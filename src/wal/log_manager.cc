#include "wal/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/posix_io.h"
#include "obs/trace.h"

namespace oib {

namespace {

// Retry budget for transient (failpoint-injected) file-sink errors.
constexpr int kMaxFileAttempts = 4;
constexpr uint32_t kBackoffBaseUs = 50;

}  // namespace

LogManager::LogManager(size_t ring_bytes)
    : ring_(ring_bytes), ring_mask_(ring_bytes - 1), slots_(kSealSlots) {}

LogManager::~LogManager() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

void LogManager::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterValueFn(
      "wal.records", [this] { return records_.load(std::memory_order_relaxed); },
      this);
  registry->RegisterValueFn(
      "wal.bytes", [this] { return bytes_.load(std::memory_order_relaxed); },
      this);
  registry->RegisterValueFn(
      "wal.flushes",
      [this] { return flushes_.load(std::memory_order_relaxed); }, this);
  // Reserved vs flushed byte positions: their difference is the flushed-LSN
  // lag (bytes appended but not yet durable), the quantity the time-series
  // sampler plots to show WAL backpressure over a build.
  registry->RegisterValueFn(
      "wal.reserved_bytes",
      [this] { return reserved_.load(std::memory_order_relaxed); }, this);
  registry->RegisterValueFn(
      "wal.flushed_bytes",
      [this] { return flushed_.load(std::memory_order_relaxed); }, this);
  registry->RegisterHistogram("wal.append_ns", &append_ns_, this);
  registry->RegisterHistogram("wal.flush_ns", &flush_ns_, this);
}

Status LogManager::ConfigureRing(size_t ring_bytes) {
  if (ring_bytes < 2 * kFrameHeader || (ring_bytes & (ring_bytes - 1)) != 0) {
    return Status::InvalidArgument("wal ring size must be a power of two");
  }
  sync::MutexLock fl(&flush_mu_);
  sync::MutexLock dg(&drain_mu_);
  // Empty the old ring into the backing store first (does not flush:
  // drained bytes stay volatile until Flush moves the boundary).  Callers
  // guarantee no concurrent appenders, so every reservation is sealed and
  // this terminates.
  DrainUntilLocked(reserved_.load(std::memory_order_acquire));
  if (ring_bytes != ring_.size()) {
    ring_.assign(ring_bytes, 0);
    ring_.shrink_to_fit();
    ring_mask_ = ring_bytes - 1;
  }
  return Status::OK();
}

Status LogManager::AttachFile(const std::string& path) {
  sync::MutexLock fl(&flush_mu_);
  sync::MutexLock dg(&drain_mu_);
  if (reserved_.load(std::memory_order_acquire) != 0 || wal_fd_ >= 0) {
    return Status::InvalidArgument(
        "AttachFile requires an empty log with no file attached");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string contents;
  Status s = ReadFileToString(path, &contents);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  // Validate frame by frame; the first incomplete or CRC-mismatched frame
  // (a write torn by the last crash) ends the trustworthy prefix.
  size_t pos = 0;
  while (pos + kFrameHeader <= contents.size()) {
    uint32_t len = DecodeFixed32(contents.data() + pos);
    if (pos + kFrameHeader + len > contents.size()) break;
    uint32_t crc = DecodeFixed32(contents.data() + pos + 4);
    if (crc32c::Unmask(crc) !=
        crc32c::Value(contents.data() + pos + kFrameHeader, len)) {
      break;
    }
    pos += kFrameHeader + len;
  }
  if (pos < contents.size()) {
    if (::ftruncate(fd, off_t(pos)) != 0) {
      int saved = errno;
      ::close(fd);
      return Status::IoError(std::string("ftruncate: ") +
                             std::strerror(saved));
    }
    contents.resize(pos);
  }
  wal_fd_ = fd;
  wal_path_ = path;
  backing_ = std::move(contents);
  drained_.store(pos, std::memory_order_relaxed);
  flushed_.store(pos, std::memory_order_relaxed);
  reserved_.store(pos, std::memory_order_release);
  return Status::OK();
}

Status LogManager::WriteFileSinkLocked(uint64_t flushed, uint64_t target) {
  if (wal_fd_ < 0 || target <= flushed) return Status::OK();
  Status s;
  for (int attempt = 1; attempt <= kMaxFileAttempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(kBackoffBaseUs << (attempt - 2)));
    }
    s = [&]() -> Status {
      FailPointHit hit;
      OIB_FAIL_POINT_HIT("wal.flush", hit);
      const char* data = backing_.data() + flushed;
      size_t n = size_t(target - flushed);
      if (hit.action == FailPointAction::kReturnError) {
        return Status::Injected("wal.flush");
      }
      if (hit.action == FailPointAction::kShortWrite) {
        // A prefix lands; flushed_ does not advance, so the retry (or the
        // next flush leader) rewrites the same range in place and the
        // attach-time scan truncates it if the process dies first.
        size_t k = n > 0 ? std::min(size_t(hit.arg), n - 1) : 0;
        OIB_RETURN_IF_ERROR(PwriteFull(wal_fd_, data, k, flushed));
        return Status::Injected("wal.flush: short write");
      }
      if (hit.action == FailPointAction::kTornWrite) {
        // Crash mid-flush: a scrambled tail lands and the process dies.
        std::string torn(data, n);
        for (size_t i = std::min(size_t(hit.arg), n > 0 ? n - 1 : 0);
             i < torn.size(); ++i) {
          torn[i] = char(torn[i] ^ 0xa5);
        }
        (void)PwriteFull(wal_fd_, torn.data(), torn.size(), flushed);
        FailPointHardAbort("wal.flush");
      }
      OIB_RETURN_IF_ERROR(PwriteFull(wal_fd_, data, n, flushed));
      OIB_FAIL_POINT("wal.fsync");
      if (::fdatasync(wal_fd_) != 0) {
        return Status::IoError(std::string("fdatasync: ") +
                               std::strerror(errno));
      }
      return Status::OK();
    }();
    if (s.ok()) return s;
    if (!s.IsInjected() && !s.IsIoError()) break;
  }
  return s;
}

void LogManager::RingWrite(uint64_t off, const char* data, size_t n) {
  size_t pos = static_cast<size_t>(off) & ring_mask_;
  size_t first = n < ring_.size() - pos ? n : ring_.size() - pos;
  std::memcpy(ring_.data() + pos, data, first);
  if (n > first) std::memcpy(ring_.data(), data + first, n - first);
}

Status LogManager::Append(LogRecord* rec) {
  const bool timed =
      (append_tick_.fetch_add(1, std::memory_order_relaxed) &
       kAppendSampleMask) == 0;
  const uint64_t t0 = timed ? obs::MonotonicNanos() : 0;
  std::string payload;
  rec->SerializeTo(&payload);
  const uint64_t size = kFrameHeader + payload.size();
  if (size > ring_.size()) {
    return Status::InvalidArgument("log record exceeds wal_ring_bytes");
  }

  // 1. Reserve: one fetch-add claims the byte range and the LSN.
  const uint64_t start = reserved_.fetch_add(size, std::memory_order_relaxed);
  const uint64_t end = start + size;
  rec->lsn = start + 1;

  // 2. Backpressure: the ring positions for [start, end) must not alias
  // bytes that have not been drained into the backing store yet.  Help
  // drain rather than merely spin — with no flusher active, the ring
  // would never empty on its own.
  while (end > drained_.load(std::memory_order_acquire) + ring_.size()) {
    TryDrain();
  }

  // 3. Copy the framed record into the ring outside any lock.  The
  // masked payload CRC makes a tear inside the frame body detectable at
  // scan time (a tear in the 8 header bytes already falls outside the
  // [len] walk).
  char hdr[kFrameHeader];
  EncodeFixed32(hdr, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(hdr + 4, crc32c::Mask(crc32c::Value(payload.data(),
                                                    payload.size())));
  RingWrite(start, hdr, kFrameHeader);
  RingWrite(start + kFrameHeader, payload.data(), payload.size());

  // 4. Publish via a per-slot seal.  Ticket order tracks reservation order
  // closely (both are fetch-adds in the same function), so the drain's
  // in-ticket-order consumption rarely buffers out-of-order ranges.
  // Claiming must be atomic (CAS, not load-then-store): see the SealSlot
  // comment — two sealers one lap apart may otherwise both observe the
  // slot free and tear each other's start/end writes.
  const uint64_t ticket = seal_seq_.fetch_add(1, std::memory_order_relaxed);
  SealSlot& slot = slots_[static_cast<size_t>(ticket) & (kSealSlots - 1)];
  uint64_t expected = 0;
  while (!slot.start_p1.compare_exchange_weak(expected, kSlotClaimed,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
    // Lapped: the occupant from `ticket - kSealSlots` is not consumed yet
    // (or its sealer is mid-publication).  Help drain until it frees up.
    expected = 0;
    TryDrain();
  }
  slot.end = end;
  slot.start_p1.store(start + 1, std::memory_order_release);

  records_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(size, std::memory_order_relaxed);
  size_t rm = static_cast<size_t>(rec->rm_id);
  if (rm < records_by_rm_.size()) {
    records_by_rm_[rm].fetch_add(1, std::memory_order_relaxed);
    bytes_by_rm_[rm].fetch_add(size, std::memory_order_relaxed);
  }
  if (timed) append_ns_.Record(obs::MonotonicNanos() - t0);
  return Status::OK();
}

void LogManager::TryDrain() {
  sync::TryMutexLock g(&drain_mu_);
  if (g.owns_lock()) {
    ConsumeSealedLocked();
  } else {
    // Someone else is draining; give them the core.
    std::this_thread::yield();
  }
}

void LogManager::ConsumeSealedLocked() {
  // Consume sealed slots in ticket order, then extend the contiguous
  // drained prefix.  Freeing a slot (the store of 0) un-laps any sealer
  // waiting on it; advancing drained_ unblocks ring-space waiters.
  while (true) {
    SealSlot& slot = slots_[static_cast<size_t>(consume_seq_) & (kSealSlots - 1)];
    uint64_t start_p1 = slot.start_p1.load(std::memory_order_acquire);
    // Not sealed yet: free, or claimed with fields still being written.
    if (start_p1 == 0 || start_p1 == kSlotClaimed) break;
    pending_.emplace(start_p1 - 1, slot.end);
    slot.start_p1.store(0, std::memory_order_release);
    ++consume_seq_;
  }
  uint64_t d = drained_.load(std::memory_order_relaxed);
  bool advanced = false;
  while (!pending_.empty() && pending_.top().first == d) {
    auto [start, end] = pending_.top();
    pending_.pop();
    size_t pos = static_cast<size_t>(start) & ring_mask_;
    size_t n = static_cast<size_t>(end - start);
    size_t first = n < ring_.size() - pos ? n : ring_.size() - pos;
    backing_.append(ring_.data() + pos, first);
    if (n > first) backing_.append(ring_.data(), n - first);
    d = end;
    advanced = true;
  }
  if (advanced) drained_.store(d, std::memory_order_release);
}

void LogManager::DrainUntilLocked(uint64_t target_bytes) {
  while (drained_.load(std::memory_order_relaxed) < target_bytes) {
    ConsumeSealedLocked();
    if (drained_.load(std::memory_order_relaxed) >= target_bytes) break;
    // The record at the drained frontier is reserved but not yet sealed;
    // its appender is between the fetch-add and the seal store (it cannot
    // be blocked on ring space: the frontier record always fits, and it
    // never takes drain_mu_).  Yield until the seal lands.
    std::this_thread::yield();
  }
}

Status LogManager::ParseRecordAt(uint64_t off, LogRecord* rec) const {
  if (off + kFrameHeader > backing_.size()) {
    return Status::Corruption("lsn beyond log end");
  }
  uint32_t len = DecodeFixed32(backing_.data() + off);
  if (off + kFrameHeader + len > backing_.size()) {
    return Status::Corruption("truncated record");
  }
  uint32_t crc = DecodeFixed32(backing_.data() + off + 4);
  if (crc32c::Unmask(crc) !=
      crc32c::Value(backing_.data() + off + kFrameHeader, len)) {
    return Status::Corruption("frame checksum mismatch at lsn " +
                              std::to_string(off + 1));
  }
  Status s = LogRecord::DeserializeFrom(
      std::string_view(backing_.data() + off + kFrameHeader, len), rec);
  if (s.ok()) rec->lsn = off + 1;
  return s;
}

Status LogManager::Flush(Lsn lsn) {
  // Lock-free fast path: a group-commit leader already covered this lsn.
  // (Records never straddle the durable boundary — the drain moves whole
  // records — so a record is durable iff it starts inside the boundary.)
  if (lsn != kInvalidLsn &&
      lsn - 1 < flushed_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  uint64_t target = lsn == kInvalidLsn
                        ? reserved_.load(std::memory_order_acquire)
                        : static_cast<uint64_t>(lsn);
  // `lsn` beyond the last reservation flushes everything, like the old
  // whole-tail flush did.
  uint64_t reserved = reserved_.load(std::memory_order_acquire);
  if (target > reserved) target = reserved;

  uint64_t t0 = obs::MonotonicNanos();
  sync::MutexLock fl(&flush_mu_);
  // Re-check after the leader hand-off: whoever held flush_mu_ published
  // the boundary for every record sealed before it released.
  uint64_t flushed = flushed_.load(std::memory_order_relaxed);
  if (flushed >= target) return Status::OK();
  {
    // One span per group-commit batch, on the leader's track; arg = bytes
    // made durable (set below once the drain publishes the boundary).
    obs::ScopedSpan batch_span(&obs::Tracer::Default(), "wal.flush_batch");
    sync::MutexLock dg(&drain_mu_);
    DrainUntilLocked(target);
    uint64_t drained = drained_.load(std::memory_order_relaxed);
    batch_span.set_arg(drained - flushed);
    // With a file sink attached, the bytes must be on the file (and
    // fsynced) *before* the boundary publishes — flushed_ never claims
    // bytes the file does not hold.  On a persistent write failure the
    // boundary stays put and the error propagates to the committer.
    OIB_RETURN_IF_ERROR(WriteFileSinkLocked(flushed, drained));
    // Group commit: publish everything drained, not just the target, so
    // committers queued behind this leader find their records durable.
    flushed_.store(drained, std::memory_order_release);
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  flush_ns_.Record(obs::MonotonicNanos() - t0);
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec) {
  if (lsn == kInvalidLsn) return Status::InvalidArgument("invalid lsn");
  uint64_t off = lsn - 1;
  if (off >= reserved_.load(std::memory_order_acquire)) {
    return Status::Corruption("lsn beyond log end");
  }
  sync::MutexLock g(&drain_mu_);
  // The caller's record was fully appended (sealed), so draining up to it
  // terminates; this only buffers volatile bytes, it does not flush.
  DrainUntilLocked(off + 1);
  return ParseRecordAt(off, rec);
}

Status LogManager::ScanDurable(
    Lsn start_lsn, const std::function<bool(const LogRecord&)>& fn) {
  // Snapshot the durable prefix and run the callback with no log lock
  // held: redo callbacks latch pages, while the forward path appends to
  // the log under page latches — calling out with a log mutex held would
  // invert that page-latch -> log-lock order.  Records flushed after the
  // call are not seen, which is the contract ("durable as of the call").
  std::string snapshot;
  uint64_t limit = flushed_.load(std::memory_order_acquire);
  {
    sync::MutexLock g(&drain_mu_);
    snapshot = backing_.substr(0, limit);
  }
  size_t pos = (start_lsn == kInvalidLsn) ? 0 : start_lsn - 1;
  while (pos + kFrameHeader <= snapshot.size()) {
    uint32_t len = DecodeFixed32(snapshot.data() + pos);
    if (pos + kFrameHeader + len > snapshot.size()) break;  // torn tail
    // A tear *inside* the frame body (a crash mid-write left the length
    // intact but garbled the payload) must truncate the tail too, not
    // feed garbage to redo.  Nothing after a torn frame is trustworthy:
    // frames are written in order, so a valid-looking successor of a torn
    // frame can only be leftover bytes from an earlier life of the file.
    uint32_t crc = DecodeFixed32(snapshot.data() + pos + 4);
    if (crc32c::Unmask(crc) !=
        crc32c::Value(snapshot.data() + pos + kFrameHeader, len)) {
      break;  // torn tail
    }
    LogRecord rec;
    OIB_RETURN_IF_ERROR(LogRecord::DeserializeFrom(
        std::string_view(snapshot.data() + pos + kFrameHeader, len), &rec));
    rec.lsn = pos + 1;
    if (!fn(rec)) break;
    pos += kFrameHeader + len;
  }
  return Status::OK();
}

void LogManager::DropUnflushed() {
  // Crash simulation; the caller has quiesced appenders.  Everything past
  // the durable boundary is discarded: the drained-but-unflushed suffix of
  // the backing store, all sealed-but-undrained ring contents, and the
  // reservation counter itself rewinds to the boundary — so the volatile
  // tail vanishes exactly as if the process had died, leaving a
  // prefix-exact durable log.
  sync::MutexLock fl(&flush_mu_);
  sync::MutexLock dg(&drain_mu_);
  uint64_t flushed = flushed_.load(std::memory_order_relaxed);
  backing_.resize(flushed);
  drained_.store(flushed, std::memory_order_relaxed);
  reserved_.store(flushed, std::memory_order_relaxed);
  seal_seq_.store(0, std::memory_order_relaxed);
  consume_seq_ = 0;
  for (SealSlot& slot : slots_) {
    slot.start_p1.store(0, std::memory_order_relaxed);
  }
  pending_ = {};
}

LogStats LogManager::stats() const {
  LogStats s;
  s.records = records_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < s.records_by_rm.size(); ++i) {
    s.records_by_rm[i] = records_by_rm_[i].load(std::memory_order_relaxed);
    s.bytes_by_rm[i] = bytes_by_rm_[i].load(std::memory_order_relaxed);
  }
  s.flushes = flushes_.load(std::memory_order_relaxed);
  return s;
}

void LogManager::ResetStats() {
  records_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < records_by_rm_.size(); ++i) {
    records_by_rm_[i].store(0, std::memory_order_relaxed);
    bytes_by_rm_[i].store(0, std::memory_order_relaxed);
  }
  flushes_.store(0, std::memory_order_relaxed);
}

}  // namespace oib
