// Write-ahead log records.
//
// Record taxonomy follows the paper's recovery assumptions (section 1.1):
//  * kUpdate    — undo-redo record (both payloads present)
//  * kRedoOnly  — redo-only record (e.g., side-file appends, SMO/NTAs)
//  * kUndoOnly  — undo-only record (e.g., NSF transaction "inserted" a key
//                 that IB had already physically inserted, section 2.1.1)
//  * kClr       — compensation record written during rollback; redo-only,
//                 carries undo_next_lsn
// plus transaction control records and a fuzzy-checkpoint record.
//
// Each data record names a resource manager (heap / B+-tree / side-file)
// and an RM-private opcode; the recovery manager dispatches redo/undo to
// handlers registered per RM.

#ifndef OIB_WAL_LOG_RECORD_H_
#define OIB_WAL_LOG_RECORD_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace oib {

enum class LogRecordType : uint8_t {
  kUpdate = 1,
  kRedoOnly = 2,
  kUndoOnly = 3,
  kClr = 4,
  kBegin = 5,
  kCommit = 6,
  kAbort = 7,  // rollback completed
  kCheckpoint = 8,
};

enum class RmId : uint8_t {
  kNone = 0,
  kHeap = 1,
  kBtree = 2,
  kSideFile = 3,
};

struct LogRecord {
  Lsn lsn = kInvalidLsn;        // assigned by LogManager on append
  Lsn prev_lsn = kInvalidLsn;   // previous record of the same transaction
  TxnId txn_id = kInvalidTxnId;
  LogRecordType type = LogRecordType::kUpdate;
  RmId rm_id = RmId::kNone;
  uint8_t opcode = 0;           // RM-private operation code
  PageId page_id = kInvalidPageId;  // primary page affected (redo target)
  uint32_t aux_id = 0;          // RM-private (e.g., table id or index id)
  Lsn undo_next_lsn = kInvalidLsn;  // CLR only: next record to undo
  std::string redo;             // RM-private redo payload
  std::string undo;             // RM-private undo payload

  bool RequiresRedo() const {
    return type == LogRecordType::kUpdate ||
           type == LogRecordType::kRedoOnly || type == LogRecordType::kClr;
  }
  bool RequiresUndo() const {
    return type == LogRecordType::kUpdate ||
           type == LogRecordType::kUndoOnly;
  }

  void SerializeTo(std::string* out) const;
  static Status DeserializeFrom(std::string_view in, LogRecord* out);

  std::string ToString() const;
};

}  // namespace oib

#endif  // OIB_WAL_LOG_RECORD_H_
