// RecoveryManager: restart recovery (analysis + redo + undo).
//
// A single forward pass over the durable log performs analysis (rebuilding
// the active-transaction table) and redo (repeating history, guarded by
// page LSNs); loser transactions are then rolled back through the normal
// undo path, writing CLRs.  Recovery can start from a *sharp* checkpoint:
// the engine flushes all dirty pages, logs a Checkpoint record carrying the
// active-transaction table, and stores that record's LSN in disk metadata.
//
// With redo_threads > 1 the pass splits in two: analysis collects the
// redo work list, then workers replay it partitioned by page id.  All of
// a page's records hash to the same partition, so per-page LSN order is
// untouched; records whose redo spans pages (ResourceManager::
// RedoPageSet returns > 1 — B+-tree splits and root growth) are barriers:
// every partition finishes the records before them, the barrier record is
// applied serially, and the partitions resume.  Page-LSN guards keep the
// replay idempotent either way, so single- and multi-threaded redo
// produce identical pages.
//
// This is the machinery the paper leans on when it argues that logging by
// IB (NSF) or during side-file processing (SF) leaves the index
// "structurally consistent after restart" (sections 2.2.3, 3.2.4).

#ifndef OIB_WAL_RECOVERY_H_
#define OIB_WAL_RECOVERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"
#include "wal/resource_manager.h"

namespace oib {

struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t records_redone = 0;
  uint64_t loser_txns = 0;
  // Redo parallelism actually used and the serial barriers hit
  // (multi-page records; see file comment).
  size_t redo_threads = 1;
  uint64_t redo_barriers = 0;
  // Wall-clock: the analysis scan (which includes redo itself when
  // redo_threads == 1, collection only otherwise), the partitioned
  // replay (0 when serial), and loser rollback.
  uint64_t analysis_ns = 0;
  uint64_t redo_ns = 0;
  uint64_t undo_ns = 0;
};

// Serialization helpers for the Checkpoint record payload.
std::string EncodeCheckpointPayload(
    const std::vector<std::pair<TxnId, Lsn>>& active);
Status DecodeCheckpointPayload(const std::string& payload,
                               std::vector<std::pair<TxnId, Lsn>>* active);

class RecoveryManager {
 public:
  RecoveryManager(LogManager* log, TransactionManager* txns, RmRegistry* rms,
                  size_t redo_threads = 1)
      : log_(log),
        txns_(txns),
        rms_(rms),
        redo_threads_(redo_threads > 0 ? redo_threads : 1) {}

  // Phase 1+2: analysis and redo in one forward pass.  `checkpoint_lsn` is
  // the LSN of the last sharp checkpoint record, or kInvalidLsn to scan the
  // whole log.  Outputs the loser transactions (id, last_lsn).
  Status AnalyzeAndRedo(Lsn checkpoint_lsn,
                        std::vector<std::pair<TxnId, Lsn>>* losers,
                        RecoveryStats* stats = nullptr);

  // Phase 3: rolls back the losers.  Called after the engine has re-opened
  // catalog objects, because B+-tree undo is logical and needs live tree
  // objects to traverse.
  Status UndoLosers(const std::vector<std::pair<TxnId, Lsn>>& losers,
                    RecoveryStats* stats = nullptr);

 private:
  // Replays `recs` across redo_threads_ partitions (see file comment).
  Status ApplyRedoPartitioned(const std::vector<LogRecord>& recs,
                              RecoveryStats* stats);

  LogManager* log_;
  TransactionManager* txns_;
  RmRegistry* rms_;
  size_t redo_threads_;
};

}  // namespace oib

#endif  // OIB_WAL_RECOVERY_H_
