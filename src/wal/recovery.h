// RecoveryManager: restart recovery (analysis + redo + undo).
//
// A single forward pass over the durable log performs analysis (rebuilding
// the active-transaction table) and redo (repeating history, guarded by
// page LSNs); loser transactions are then rolled back through the normal
// undo path, writing CLRs.  Recovery can start from a *sharp* checkpoint:
// the engine flushes all dirty pages, logs a Checkpoint record carrying the
// active-transaction table, and stores that record's LSN in disk metadata.
//
// This is the machinery the paper leans on when it argues that logging by
// IB (NSF) or during side-file processing (SF) leaves the index
// "structurally consistent after restart" (sections 2.2.3, 3.2.4).

#ifndef OIB_WAL_RECOVERY_H_
#define OIB_WAL_RECOVERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"
#include "wal/resource_manager.h"

namespace oib {

struct RecoveryStats {
  uint64_t records_scanned = 0;
  uint64_t records_redone = 0;
  uint64_t loser_txns = 0;
};

// Serialization helpers for the Checkpoint record payload.
std::string EncodeCheckpointPayload(
    const std::vector<std::pair<TxnId, Lsn>>& active);
Status DecodeCheckpointPayload(const std::string& payload,
                               std::vector<std::pair<TxnId, Lsn>>* active);

class RecoveryManager {
 public:
  RecoveryManager(LogManager* log, TransactionManager* txns, RmRegistry* rms)
      : log_(log), txns_(txns), rms_(rms) {}

  // Phase 1+2: analysis and redo in one forward pass.  `checkpoint_lsn` is
  // the LSN of the last sharp checkpoint record, or kInvalidLsn to scan the
  // whole log.  Outputs the loser transactions (id, last_lsn).
  Status AnalyzeAndRedo(Lsn checkpoint_lsn,
                        std::vector<std::pair<TxnId, Lsn>>* losers,
                        RecoveryStats* stats = nullptr);

  // Phase 3: rolls back the losers.  Called after the engine has re-opened
  // catalog objects, because B+-tree undo is logical and needs live tree
  // objects to traverse.
  Status UndoLosers(const std::vector<std::pair<TxnId, Lsn>>& losers,
                    RecoveryStats* stats = nullptr);

 private:
  LogManager* log_;
  TransactionManager* txns_;
  RmRegistry* rms_;
};

}  // namespace oib

#endif  // OIB_WAL_RECOVERY_H_
