#include "wal/recovery.h"

#include <map>

#include "common/coding.h"

namespace oib {

std::string EncodeCheckpointPayload(
    const std::vector<std::pair<TxnId, Lsn>>& active) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(active.size()));
  for (const auto& [id, lsn] : active) {
    PutFixed64(&out, id);
    PutFixed64(&out, lsn);
  }
  return out;
}

Status DecodeCheckpointPayload(const std::string& payload,
                               std::vector<std::pair<TxnId, Lsn>>* active) {
  BufferReader r(payload);
  uint32_t n;
  if (!r.GetFixed32(&n)) return Status::Corruption("checkpoint payload");
  active->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id, lsn;
    if (!r.GetFixed64(&id) || !r.GetFixed64(&lsn)) {
      return Status::Corruption("checkpoint payload entry");
    }
    active->emplace_back(id, lsn);
  }
  return Status::OK();
}

Status RecoveryManager::AnalyzeAndRedo(
    Lsn checkpoint_lsn, std::vector<std::pair<TxnId, Lsn>>* losers,
    RecoveryStats* stats) {
  RecoveryStats local;
  std::map<TxnId, Lsn> txn_table;  // active (potential loser) transactions
  TxnId max_txn_seen = 0;

  Lsn scan_start = kInvalidLsn;
  if (checkpoint_lsn != kInvalidLsn) {
    LogRecord ckpt;
    OIB_RETURN_IF_ERROR(log_->ReadRecord(checkpoint_lsn, &ckpt));
    if (ckpt.type != LogRecordType::kCheckpoint) {
      return Status::Corruption("checkpoint LSN does not name a checkpoint");
    }
    std::vector<std::pair<TxnId, Lsn>> active;
    OIB_RETURN_IF_ERROR(DecodeCheckpointPayload(ckpt.redo, &active));
    for (const auto& [id, lsn] : active) {
      txn_table[id] = lsn;
      max_txn_seen = std::max(max_txn_seen, id);
    }
    scan_start = checkpoint_lsn;
  }

  // Combined analysis + redo pass.  Redo is safe interleaved with analysis
  // because every redo is guarded by a page-LSN comparison inside the RM.
  Status inner = Status::OK();
  OIB_RETURN_IF_ERROR(log_->ScanDurable(
      scan_start, [&](const LogRecord& rec) {
        ++local.records_scanned;
        if (rec.txn_id != kInvalidTxnId) {
          max_txn_seen = std::max(max_txn_seen, rec.txn_id);
          switch (rec.type) {
            case LogRecordType::kCommit:
            case LogRecordType::kAbort:
              txn_table.erase(rec.txn_id);
              break;
            default:
              txn_table[rec.txn_id] = rec.lsn;
              break;
          }
        }
        if (rec.RequiresRedo() && rec.rm_id != RmId::kNone) {
          ResourceManager* rm = rms_->Get(rec.rm_id);
          if (rm == nullptr) {
            inner = Status::Corruption("no RM for redo dispatch");
            return false;
          }
          Status s = rm->Redo(rec);
          if (!s.ok()) {
            inner = s;
            return false;
          }
          ++local.records_redone;
        }
        return true;
      }));
  OIB_RETURN_IF_ERROR(inner);

  txns_->BumpNextTxnId(max_txn_seen);

  losers->clear();
  for (const auto& [id, last_lsn] : txn_table) {
    losers->emplace_back(id, last_lsn);
  }
  local.loser_txns = losers->size();
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status RecoveryManager::UndoLosers(
    const std::vector<std::pair<TxnId, Lsn>>& losers, RecoveryStats* stats) {
  // Each transaction's chain is independent, so per-txn rollback order
  // does not matter.
  for (const auto& [id, last_lsn] : losers) {
    Transaction* loser = txns_->AdoptLoser(id, last_lsn);
    OIB_RETURN_IF_ERROR(txns_->Rollback(loser));
  }
  if (stats != nullptr) stats->loser_txns = losers.size();
  OIB_RETURN_IF_ERROR(log_->FlushAll());
  return Status::OK();
}

}  // namespace oib
