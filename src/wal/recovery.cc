#include "wal/recovery.h"

#include <map>
#include <thread>

#include "common/coding.h"
#include "obs/trace.h"

namespace oib {

namespace {

// Fibonacci-hash page -> partition so hot page-id ranges spread evenly.
inline size_t PagePartition(PageId page, size_t n) {
  uint64_t h = uint64_t(page) * 0x9e3779b97f4a7c15ULL;
  return size_t((h >> 32) % n);
}

}  // namespace

std::string EncodeCheckpointPayload(
    const std::vector<std::pair<TxnId, Lsn>>& active) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(active.size()));
  for (const auto& [id, lsn] : active) {
    PutFixed64(&out, id);
    PutFixed64(&out, lsn);
  }
  return out;
}

Status DecodeCheckpointPayload(const std::string& payload,
                               std::vector<std::pair<TxnId, Lsn>>* active) {
  BufferReader r(payload);
  uint32_t n;
  if (!r.GetFixed32(&n)) return Status::Corruption("checkpoint payload");
  active->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id, lsn;
    if (!r.GetFixed64(&id) || !r.GetFixed64(&lsn)) {
      return Status::Corruption("checkpoint payload entry");
    }
    active->emplace_back(id, lsn);
  }
  return Status::OK();
}

Status RecoveryManager::AnalyzeAndRedo(
    Lsn checkpoint_lsn, std::vector<std::pair<TxnId, Lsn>>* losers,
    RecoveryStats* stats) {
  RecoveryStats local;
  local.redo_threads = redo_threads_;
  std::map<TxnId, Lsn> txn_table;  // active (potential loser) transactions
  TxnId max_txn_seen = 0;

  Lsn scan_start = kInvalidLsn;
  if (checkpoint_lsn != kInvalidLsn) {
    LogRecord ckpt;
    OIB_RETURN_IF_ERROR(log_->ReadRecord(checkpoint_lsn, &ckpt));
    if (ckpt.type != LogRecordType::kCheckpoint) {
      return Status::Corruption("checkpoint LSN does not name a checkpoint");
    }
    std::vector<std::pair<TxnId, Lsn>> active;
    OIB_RETURN_IF_ERROR(DecodeCheckpointPayload(ckpt.redo, &active));
    for (const auto& [id, lsn] : active) {
      txn_table[id] = lsn;
      max_txn_seen = std::max(max_txn_seen, id);
    }
    scan_start = checkpoint_lsn;
  }

  // Analysis pass; with one redo thread this is also the redo pass
  // (interleaving is safe because every redo is guarded by a page-LSN
  // comparison inside the RM).  With more, redo records are collected —
  // one in-memory copy of the replayed log suffix — and partitioned
  // across workers afterwards.
  const bool parallel = redo_threads_ > 1;
  std::vector<LogRecord> redo_recs;
  uint64_t t0 = obs::MonotonicNanos();
  Status inner = Status::OK();
  OIB_RETURN_IF_ERROR(log_->ScanDurable(
      scan_start, [&](const LogRecord& rec) {
        ++local.records_scanned;
        if (rec.txn_id != kInvalidTxnId) {
          max_txn_seen = std::max(max_txn_seen, rec.txn_id);
          switch (rec.type) {
            case LogRecordType::kCommit:
            case LogRecordType::kAbort:
              txn_table.erase(rec.txn_id);
              break;
            default:
              txn_table[rec.txn_id] = rec.lsn;
              break;
          }
        }
        if (rec.RequiresRedo() && rec.rm_id != RmId::kNone) {
          if (parallel) {
            redo_recs.push_back(rec);
            return true;
          }
          ResourceManager* rm = rms_->Get(rec.rm_id);
          if (rm == nullptr) {
            inner = Status::Corruption("no RM for redo dispatch");
            return false;
          }
          Status s = rm->Redo(rec);
          if (!s.ok()) {
            inner = s;
            return false;
          }
          ++local.records_redone;
        }
        return true;
      }));
  OIB_RETURN_IF_ERROR(inner);
  local.analysis_ns = obs::MonotonicNanos() - t0;

  if (parallel && !redo_recs.empty()) {
    t0 = obs::MonotonicNanos();
    OIB_RETURN_IF_ERROR(ApplyRedoPartitioned(redo_recs, &local));
    local.redo_ns = obs::MonotonicNanos() - t0;
  }

  txns_->BumpNextTxnId(max_txn_seen);

  losers->clear();
  for (const auto& [id, last_lsn] : txn_table) {
    losers->emplace_back(id, last_lsn);
  }
  local.loser_txns = losers->size();
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status RecoveryManager::ApplyRedoPartitioned(
    const std::vector<LogRecord>& recs, RecoveryStats* stats) {
  const size_t n = redo_threads_;
  std::vector<std::vector<const LogRecord*>> parts(n);

  auto apply_list = [this](const std::vector<const LogRecord*>& list)
      -> Status {
    for (const LogRecord* rec : list) {
      ResourceManager* rm = rms_->Get(rec->rm_id);
      if (rm == nullptr) return Status::Corruption("no RM for redo dispatch");
      OIB_RETURN_IF_ERROR(rm->Redo(*rec));
    }
    return Status::OK();
  };
  // Drains every partition (concurrently) and empties them.  Called at
  // each barrier and at the end of the record list.
  auto run_parts = [&]() -> Status {
    size_t busy = 0;
    for (const auto& p : parts) busy += p.empty() ? 0 : 1;
    if (busy == 0) return Status::OK();
    Status first_error;
    if (busy == 1) {
      // One populated partition: skip the thread spawn.
      for (auto& p : parts) {
        if (!p.empty() && first_error.ok()) first_error = apply_list(p);
      }
    } else {
      std::vector<Status> results(n);
      std::vector<std::thread> workers;
      for (size_t i = 0; i < n; ++i) {
        if (parts[i].empty()) continue;
        workers.emplace_back(
            [&results, &parts, &apply_list, i] {
              results[i] = apply_list(parts[i]);
            });
      }
      for (auto& w : workers) w.join();
      for (const Status& s : results) {
        if (!s.ok()) {
          first_error = s;
          break;
        }
      }
    }
    for (auto& p : parts) p.clear();
    return first_error;
  };

  std::vector<PageId> pages;
  for (const LogRecord& rec : recs) {
    ResourceManager* rm = rms_->Get(rec.rm_id);
    if (rm == nullptr) return Status::Corruption("no RM for redo dispatch");
    rm->RedoPageSet(rec, &pages);
    if (pages.size() == 1) {
      parts[PagePartition(pages[0], n)].push_back(&rec);
    } else {
      // Multi-page record: barrier.  Everything logged before it must be
      // applied first (its pages may appear in several partitions), then
      // it runs serially.
      OIB_RETURN_IF_ERROR(run_parts());
      OIB_RETURN_IF_ERROR(rm->Redo(rec));
      ++stats->redo_barriers;
    }
  }
  OIB_RETURN_IF_ERROR(run_parts());
  stats->records_redone += recs.size();
  return Status::OK();
}

Status RecoveryManager::UndoLosers(
    const std::vector<std::pair<TxnId, Lsn>>& losers, RecoveryStats* stats) {
  uint64_t t0 = obs::MonotonicNanos();
  // Each transaction's chain is independent, so per-txn rollback order
  // does not matter.
  for (const auto& [id, last_lsn] : losers) {
    Transaction* loser = txns_->AdoptLoser(id, last_lsn);
    OIB_RETURN_IF_ERROR(txns_->Rollback(loser));
  }
  if (stats != nullptr) {
    stats->loser_txns = losers.size();
    stats->undo_ns = obs::MonotonicNanos() - t0;
  }
  OIB_RETURN_IF_ERROR(log_->FlushAll());
  return Status::OK();
}

}  // namespace oib
