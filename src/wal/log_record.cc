#include "wal/log_record.h"

#include "common/coding.h"

namespace oib {

void LogRecord::SerializeTo(std::string* out) const {
  PutFixed64(out, prev_lsn);
  PutFixed64(out, txn_id);
  out->push_back(static_cast<char>(type));
  out->push_back(static_cast<char>(rm_id));
  out->push_back(static_cast<char>(opcode));
  PutFixed32(out, page_id);
  PutFixed32(out, aux_id);
  PutFixed64(out, undo_next_lsn);
  PutLengthPrefixed(out, redo);
  PutLengthPrefixed(out, undo);
}

Status LogRecord::DeserializeFrom(std::string_view in, LogRecord* out) {
  BufferReader r(in);
  uint8_t type_byte, rm_byte, opcode;
  if (!r.GetFixed64(&out->prev_lsn) || !r.GetFixed64(&out->txn_id) ||
      !r.GetByte(&type_byte) || !r.GetByte(&rm_byte) ||
      !r.GetByte(&opcode) || !r.GetFixed32(&out->page_id) ||
      !r.GetFixed32(&out->aux_id) || !r.GetFixed64(&out->undo_next_lsn) ||
      !r.GetLengthPrefixed(&out->redo) || !r.GetLengthPrefixed(&out->undo)) {
    return Status::Corruption("truncated log record");
  }
  out->type = static_cast<LogRecordType>(type_byte);
  out->rm_id = static_cast<RmId>(rm_byte);
  out->opcode = opcode;
  return Status::OK();
}

std::string LogRecord::ToString() const {
  static const char* kTypeNames[] = {"?",        "Update", "RedoOnly",
                                     "UndoOnly", "CLR",    "Begin",
                                     "Commit",   "Abort",  "Checkpoint"};
  std::string s = "LogRecord{lsn=" + std::to_string(lsn) +
                  " prev=" + std::to_string(prev_lsn) +
                  " txn=" + std::to_string(txn_id) + " type=";
  int t = static_cast<int>(type);
  s += (t >= 1 && t <= 8) ? kTypeNames[t] : "?";
  s += " rm=" + std::to_string(static_cast<int>(rm_id));
  s += " op=" + std::to_string(static_cast<int>(opcode));
  s += " page=" + std::to_string(page_id);
  s += " redo=" + std::to_string(redo.size()) + "B";
  s += " undo=" + std::to_string(undo.size()) + "B}";
  return s;
}

}  // namespace oib
