// ResourceManager: per-subsystem redo/undo dispatch for log records.
//
// Each logged subsystem (heap, B+-tree, side-file) registers one handler.
// Redo is page-oriented and idempotent (guarded by page-LSN comparison
// inside the handler).  Undo is logical where the paper requires it (index
// keys may have moved due to splits, so key undo re-traverses the tree) and
// writes compensation records via the transaction's log chain.

#ifndef OIB_WAL_RESOURCE_MANAGER_H_
#define OIB_WAL_RESOURCE_MANAGER_H_

#include <array>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "wal/log_record.h"

namespace oib {

class Transaction;

class ResourceManager {
 public:
  virtual ~ResourceManager() = default;

  virtual RmId rm_id() const = 0;

  // Replays `rec` if the affected page(s) carry an older page LSN.
  virtual Status Redo(const LogRecord& rec) = 0;

  // Reverses `rec`'s effect on behalf of `txn`, writing a CLR whose
  // undo_next_lsn is rec.prev_lsn.
  virtual Status Undo(Transaction* txn, const LogRecord& rec) = 0;

  // Pages a redo of `rec` would touch.  Parallel restart redo partitions
  // single-page records by page id (per-page LSN order is preserved) and
  // applies multi-page records as serial barriers, so RMs whose redo
  // spans pages must override this.  Decode failures may be reported
  // conservatively by returning OK with >1 page (forcing a barrier, where
  // Redo itself will surface the error).
  virtual void RedoPageSet(const LogRecord& rec, std::vector<PageId>* out) {
    out->clear();
    out->push_back(rec.page_id);
  }
};

class RmRegistry {
 public:
  void Register(ResourceManager* rm) {
    rms_[static_cast<size_t>(rm->rm_id())] = rm;
  }

  ResourceManager* Get(RmId id) const {
    size_t i = static_cast<size_t>(id);
    return i < rms_.size() ? rms_[i] : nullptr;
  }

 private:
  std::array<ResourceManager*, 4> rms_{};
};

}  // namespace oib

#endif  // OIB_WAL_RESOURCE_MANAGER_H_
