// LogManager: the append-only write-ahead log.
//
// LSNs are byte offsets into the log stream plus one (so kInvalidLsn == 0
// never collides with a real record).  The log is split into a *durable*
// prefix (survives SimulateCrash) and a volatile tail; Flush() moves the
// boundary.  This models a disk-resident log without real I/O so crash
// tests stay deterministic; the durable prefix plays the role of the log
// file contents at the moment of a failure.
//
// Statistics (records/bytes appended, per-RM breakdown) feed the E4
// logging-overhead experiment.

#ifndef OIB_WAL_LOG_MANAGER_H_
#define OIB_WAL_LOG_MANAGER_H_

#include <array>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "wal/log_record.h"

namespace oib {

struct LogStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  // Indexed by RmId (kNone..kSideFile).
  std::array<uint64_t, 4> records_by_rm{};
  std::array<uint64_t, 4> bytes_by_rm{};
  uint64_t flushes = 0;
};

class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Appends `rec`, assigning rec->lsn.  Does not flush.
  Status Append(LogRecord* rec);

  // Makes the log durable at least up to `lsn` (kInvalidLsn → everything).
  Status Flush(Lsn lsn);
  Status FlushAll() { return Flush(kInvalidLsn); }

  // Random access read of the record at `lsn` (durable or volatile region).
  Status ReadRecord(Lsn lsn, LogRecord* rec) const;

  // Sequential scan of the *durable* log from `start_lsn` (or from the
  // beginning).  Calls fn for each record; stops early if fn returns false.
  Status ScanDurable(Lsn start_lsn,
                     const std::function<bool(const LogRecord&)>& fn) const;

  Lsn next_lsn() const;
  Lsn flushed_lsn() const;

  // Crash simulation: discards the volatile tail.
  void DropUnflushed();

  LogStats stats() const;
  void ResetStats();

  const obs::Histogram& append_hist() const { return append_ns_; }
  const obs::Histogram& flush_hist() const { return flush_ns_; }

  // Registers wal.{records,bytes,flushes,append_ns,flush_ns} with
  // `registry` (owner = this; the destructor detaches them).  The Env's
  // log outlives Engine incarnations, so a Restart re-attaching the same
  // names simply replaces identical entries.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  // Appends are timed 1-in-64: the clock read costs more than the append
  // itself on some hosts, so the untimed path pays only this relaxed tick.
  static constexpr uint64_t kAppendSampleMask = 63;

  mutable std::mutex mu_;
  std::string durable_;
  std::string tail_;  // appended after durable_
  LogStats stats_;
  std::atomic<uint64_t> append_tick_{0};
  obs::Histogram append_ns_;  // sampled
  obs::Histogram flush_ns_;   // only flushes that moved the boundary
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace oib

#endif  // OIB_WAL_LOG_MANAGER_H_
