// LogManager: the append-only write-ahead log.
//
// LSNs are byte offsets into the log stream plus one (so kInvalidLsn == 0
// never collides with a real record).  The log is split into a *durable*
// prefix (survives SimulateCrash) and a volatile tail; Flush() moves the
// boundary.  By default this models a disk-resident log without real I/O
// so crash tests stay deterministic; the durable prefix plays the role of
// the log file contents at the moment of a failure.
//
// AttachFile() adds a real file sink: Flush appends the newly drained
// bytes to the file and fsyncs *before* publishing the durable boundary,
// so `flushed_` never claims bytes the file does not hold.  At attach
// time the file is loaded and frame-validated; an incomplete or
// CRC-mismatched tail (a write torn by a crash) is truncated away.  Every
// frame is [len:u32][crc32c:u32][payload] — the masked CRC covers the
// payload, so a tear *inside* a frame body is detected, not replayed.
//
// Appends are reservation-based so concurrent appenders never serialize on
// a lock:
//  * Append reserves its byte range with a single fetch-add on the atomic
//    next-LSN counter, copies the framed record into a fixed ring buffer
//    outside any lock, and publishes via a per-slot seal (release store);
//  * a *drain* (run by Flush, or opportunistically by an appender that
//    finds the ring full) consumes sealed records in reservation order and
//    moves their bytes into the contiguous backing store;
//  * Flush(lsn) is group commit: one leader drains far enough to cover
//    `lsn` and then publishes the durable boundary for every record sealed
//    so far, so concurrent committers arriving behind it find their target
//    already durable via a lock-free atomic check.
// Records become durable only when Flush advances `flushed_`; bytes that
// were drained but not flushed are still volatile and are discarded by
// DropUnflushed, which therefore still yields a prefix-exact durable log.
//
// Statistics (records/bytes appended, per-RM breakdown) feed the E4
// logging-overhead experiment.

#ifndef OIB_WAL_LOG_MANAGER_H_
#define OIB_WAL_LOG_MANAGER_H_

#include <array>
#include <atomic>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "wal/log_record.h"

namespace oib {

struct LogStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  // Indexed by RmId (kNone..kSideFile).
  std::array<uint64_t, 4> records_by_rm{};
  std::array<uint64_t, 4> bytes_by_rm{};
  uint64_t flushes = 0;
};

class LogManager {
 public:
  static constexpr size_t kDefaultRingBytes = 1 << 20;

  explicit LogManager(size_t ring_bytes = kDefaultRingBytes);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Resizes the append ring (power of two).  Called at Engine::Open /
  // Restart, i.e. with no concurrent appenders; any bytes still in the
  // ring are drained (not flushed) first.
  Status ConfigureRing(size_t ring_bytes);

  // Attaches a log file sink.  Must be called on an empty log (before any
  // Append).  Loads the file, validates every frame's length and CRC, and
  // truncates the first torn/incomplete frame and everything after it;
  // the surviving prefix becomes the durable log (flushed_lsn reflects
  // it) and new appends continue after it.  Failpoints: `wal.flush`
  // (error/short/torn/abort on the file write), `wal.fsync` (error on the
  // durability barrier).
  Status AttachFile(const std::string& path);

  // Bytes the file sink would need to replay from the attach-time load
  // (diagnostics; 0 when no file is attached).
  bool has_file() const { return wal_fd_ >= 0; }

  // Appends `rec`, assigning rec->lsn.  Does not flush.  Thread-safe and
  // lock-free on the common path.
  Status Append(LogRecord* rec);

  // Makes the log durable at least up to `lsn` (kInvalidLsn → everything
  // appended before the call).  Group commit: see file comment.
  Status Flush(Lsn lsn);
  Status FlushAll() { return Flush(kInvalidLsn); }

  // Random access read of the record at `lsn` (durable or volatile
  // region).  The record must have been fully appended.
  Status ReadRecord(Lsn lsn, LogRecord* rec);

  // Sequential scan of the *durable* log from `start_lsn` (or from the
  // beginning).  Calls fn for each record; stops early if fn returns false.
  Status ScanDurable(Lsn start_lsn,
                     const std::function<bool(const LogRecord&)>& fn);

  // Single atomic loads: progress reporting reads these concurrently with
  // appenders and must never contend.
  Lsn next_lsn() const {
    return reserved_.load(std::memory_order_relaxed) + 1;
  }
  Lsn flushed_lsn() const {
    return flushed_.load(std::memory_order_acquire) + 1;
  }

  // Crash simulation: discards the volatile tail (ring contents plus any
  // drained-but-unflushed suffix).  Caller must have quiesced appenders.
  void DropUnflushed();

  LogStats stats() const;
  void ResetStats();

  const obs::Histogram& append_hist() const { return append_ns_; }
  const obs::Histogram& flush_hist() const { return flush_ns_; }

  // Registers wal.{records,bytes,flushes,append_ns,flush_ns} with
  // `registry` (owner = this; the destructor detaches them).  The Env's
  // log outlives Engine incarnations, so a Restart re-attaching the same
  // names simply replaces identical entries.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  // Each record is framed as [len:u32][crc32c:u32][payload:len]; the
  // masked CRC covers the payload bytes.
  static constexpr size_t kFrameHeader = 8;
  // Seal slots (power of two).  A sealer that laps a slot whose previous
  // occupant has not been consumed yet helps drain until it frees up.
  static constexpr size_t kSealSlots = 1024;
  // Appends are timed 1-in-64: the clock read costs more than the append
  // itself on some hosts, so the untimed path pays only this relaxed tick.
  static constexpr uint64_t kAppendSampleMask = 63;

  // One published reservation.  start_p1 moves through
  //   0 (free) -> kSlotClaimed (claimed, fields not yet valid)
  //     -> start offset + 1 (sealed; end was written before the release
  //        store) -> 0 (consumed).
  // The claim step must be a CAS, not a load-then-store: a sealer that is
  // preempted between observing "free" and publishing would otherwise let
  // the next lap's sealer (same slot, ticket + kSealSlots) observe "free"
  // too, and their unsynchronized field writes can interleave into a torn
  // (start of lap N, end of lap N+1) range — which, once consumed, jumps
  // drained_ a whole lap forward past ranges still buffered in pending_,
  // wedging every later drain.
  static constexpr uint64_t kSlotClaimed = ~uint64_t{0};
  struct SealSlot {
    std::atomic<uint64_t> start_p1{0};
    uint64_t end = 0;
  };

  void RingWrite(uint64_t off, const char* data, size_t n);
  // Appends backing_[flushed_, target) to the log file and fsyncs.
  // Bounded retry on transient (failpoint-injected) errors; on failure
  // the durable boundary must not advance.
  Status WriteFileSinkLocked(uint64_t flushed, uint64_t target)
      OIB_REQUIRES(drain_mu_);
  // Opportunistic drain used by appenders blocked on ring space or a
  // lapped seal slot; yields if another thread is already draining.
  void TryDrain();
  void ConsumeSealedLocked() OIB_REQUIRES(drain_mu_);
  // Drains until drained_ >= target.
  void DrainUntilLocked(uint64_t target_bytes) OIB_REQUIRES(drain_mu_);
  Status ParseRecordAt(uint64_t off, LogRecord* rec) const
      OIB_REQUIRES(drain_mu_);

  // --- hot, lock-free appender state ---
  std::atomic<uint64_t> reserved_{0};  // log bytes reserved (next_lsn - 1)
  std::atomic<uint64_t> seal_seq_{0};  // seal tickets issued
  std::atomic<uint64_t> drained_{0};   // bytes moved ring -> backing_
  std::atomic<uint64_t> flushed_{0};   // durable boundary (bytes)
  std::vector<char> ring_;
  size_t ring_mask_ = 0;
  std::vector<SealSlot> slots_;

  // --- drain state ---
  // Acquired under flush_mu_ by the group-commit leader; TryDrain takes
  // it with a try-lock (order-check-free) from the append path.
  mutable sync::Mutex drain_mu_{sync::LockRank::kWalDrain, "wal.drain_mu"};
  // Seal tickets consumed.
  uint64_t consume_seq_ OIB_GUARDED_BY(drain_mu_) = 0;
  // Sealed ranges consumed out of byte order (ticket order and reservation
  // order can differ transiently between the two fetch-adds in Append);
  // min-heap by start offset, popped as the contiguous prefix extends.
  std::priority_queue<std::pair<uint64_t, uint64_t>,
                      std::vector<std::pair<uint64_t, uint64_t>>,
                      std::greater<>>
      pending_ OIB_GUARDED_BY(drain_mu_);
  // Drained bytes [0, drained_); durable [0, flushed_).
  std::string backing_ OIB_GUARDED_BY(drain_mu_);
  // File sink (AttachFile); -1 = in-memory only.  The file always holds
  // exactly the bytes [0, flushed_) plus possibly a torn tail from a
  // failed flush attempt, which the next attempt overwrites in place.
  int wal_fd_ = -1;
  std::string wal_path_;

  // --- group commit ---
  // Serializes flush leaders; always acquired before drain_mu_.
  sync::Mutex flush_mu_{sync::LockRank::kWalFlush, "wal.flush_mu"};

  // --- statistics (lock-free cells; stats() snapshots them) ---
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> bytes_{0};
  std::array<std::atomic<uint64_t>, 4> records_by_rm_{};
  std::array<std::atomic<uint64_t>, 4> bytes_by_rm_{};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> append_tick_{0};
  obs::Histogram append_ns_;  // sampled
  obs::Histogram flush_ns_;   // only flushes that moved the boundary
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace oib

#endif  // OIB_WAL_LOG_MANAGER_H_
