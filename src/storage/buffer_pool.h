// BufferPool: fixed-size cache of pages with pin/unpin, LRU eviction, and
// the write-ahead-logging rule (a dirty page is written to disk only after
// the log is flushed up to that page's LSN).
//
// RAII page guards combine pin + latch acquisition in the safe order
// (pin first, then latch), so an evictable frame can never be latched.

#ifndef OIB_STORAGE_BUFFER_POOL_H_
#define OIB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace oib {

class BufferPool;

// Shared-latched, pinned view of a page.  Movable, not copyable.
class ReadPageGuard {
 public:
  ReadPageGuard() = default;
  ReadPageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  ReadPageGuard(ReadPageGuard&& o) noexcept { *this = std::move(o); }
  ReadPageGuard& operator=(ReadPageGuard&& o) noexcept;
  ~ReadPageGuard() { Release(); }

  ReadPageGuard(const ReadPageGuard&) = delete;
  ReadPageGuard& operator=(const ReadPageGuard&) = delete;

  bool valid() const { return page_ != nullptr; }
  const char* data() const { return page_->data(); }
  PageId page_id() const { return page_->page_id(); }
  Lsn page_lsn() const { return page_->page_lsn(); }

  // Unlatches and unpins early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
};

// Exclusively-latched, pinned view of a page.  Marks the page dirty on
// release if the holder declared a modification via MarkDirty()/set_page_lsn.
class WritePageGuard {
 public:
  WritePageGuard() = default;
  WritePageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  WritePageGuard(WritePageGuard&& o) noexcept { *this = std::move(o); }
  WritePageGuard& operator=(WritePageGuard&& o) noexcept;
  ~WritePageGuard() { Release(); }

  WritePageGuard(const WritePageGuard&) = delete;
  WritePageGuard& operator=(const WritePageGuard&) = delete;

  bool valid() const { return page_ != nullptr; }
  char* data() { return page_->data(); }
  const char* data() const { return page_->data(); }
  PageId page_id() const { return page_->page_id(); }
  Lsn page_lsn() const { return page_->page_lsn(); }

  void MarkDirty() { dirty_ = true; }
  void set_page_lsn(Lsn lsn) {
    page_->set_page_lsn(lsn);
    dirty_ = true;
  }

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t pool_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Called with a page LSN before a dirty page with that LSN is written to
  // disk; must flush the log at least that far (the WAL rule).
  void SetWalFlushHook(std::function<Status(Lsn)> hook) {
    wal_flush_ = std::move(hook);
  }

  // Guard-based accessors (preferred).
  StatusOr<ReadPageGuard> FetchRead(PageId page_id);
  StatusOr<WritePageGuard> FetchWrite(PageId page_id);
  // Allocates a fresh page and returns it exclusively latched.
  StatusOr<WritePageGuard> NewPage(PageId* page_id);
  // Same, but never reuses a freed page id (see DiskManager).
  StatusOr<WritePageGuard> NewPageNoReuse(PageId* page_id);

  // Writes one page / all dirty pages to disk (respecting the WAL rule).
  Status FlushPage(PageId page_id);
  Status FlushAll();

  // Crash simulation: drops every frame without flushing.  Pins must be
  // released first (asserted).
  void DiscardAll();

  DiskManager* disk() { return disk_; }

  // Cache-effectiveness counters.  A hit is a fetch served from a resident
  // frame; a miss reads the page from disk; fresh-page allocations count as
  // neither.
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

  // Registers bufferpool.{hits,misses,evictions} with `registry` (owner =
  // this pool; the destructor detaches them).
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  friend class ReadPageGuard;
  friend class WritePageGuard;

  // Returns a pinned (unlatched) frame for page_id, reading from disk on
  // miss.  Caller must eventually Unpin().
  StatusOr<WritePageGuard> BindNewPage(PageId page_id);
  StatusOr<Page*> FetchPageLocked(PageId page_id);
  StatusOr<Page*> PinNewFrame(PageId page_id);
  Status EvictOne();  // Requires mu_ held; frees one frame into free_.
  void Unpin(Page* page, bool dirty);
  void TouchLru(PageId page_id);

  DiskManager* disk_;
  std::function<Status(Lsn)> wal_flush_;

  std::mutex mu_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::vector<size_t> free_;                       // free frame indexes
  std::unordered_map<PageId, size_t> page_table_;  // page -> frame index
  std::list<PageId> lru_;                          // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_pos_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::MetricsRegistry* metrics_ = nullptr;  // set by AttachMetrics
};

}  // namespace oib

#endif  // OIB_STORAGE_BUFFER_POOL_H_
