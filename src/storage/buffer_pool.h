// BufferPool: fixed-size cache of pages with pin/unpin, CLOCK eviction, and
// the write-ahead-logging rule (a dirty page is written to disk only after
// the log is flushed up to that page's LSN).
//
// The pool is split into power-of-two *shards* keyed by PageId.  Each shard
// owns a slice of the frames with its own mutex, page table, free list and
// CLOCK hand, so fetches on different pages proceed in parallel instead of
// funnelling through one process-wide lock; a fetch hit touches one ref bit
// (the CLOCK "recently used" signal) instead of splicing an LRU list.
// Unpin is lock-free (atomic pin count + dirty bit), and FlushAll never
// holds a shard mutex across disk I/O or the WAL-flush hook.
//
// RAII page guards combine pin + latch acquisition in the safe order
// (pin first, then latch), so an evictable frame can never be latched.

#ifndef OIB_STORAGE_BUFFER_POOL_H_
#define OIB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace oib {

class BufferPool;

// Shared-latched, pinned view of a page.  Movable, not copyable.
class ReadPageGuard {
 public:
  ReadPageGuard() = default;
  ReadPageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  ReadPageGuard(ReadPageGuard&& o) noexcept { *this = std::move(o); }
  ReadPageGuard& operator=(ReadPageGuard&& o) noexcept;
  ~ReadPageGuard() { Release(); }

  ReadPageGuard(const ReadPageGuard&) = delete;
  ReadPageGuard& operator=(const ReadPageGuard&) = delete;

  bool valid() const { return page_ != nullptr; }
  const char* data() const { return page_->data(); }
  PageId page_id() const { return page_->page_id(); }
  Lsn page_lsn() const { return page_->page_lsn(); }

  // Unlatches and unpins early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
};

// Exclusively-latched, pinned view of a page.  Marks the page dirty on
// release if the holder declared a modification via MarkDirty()/set_page_lsn.
class WritePageGuard {
 public:
  WritePageGuard() = default;
  WritePageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  WritePageGuard(WritePageGuard&& o) noexcept { *this = std::move(o); }
  WritePageGuard& operator=(WritePageGuard&& o) noexcept;
  ~WritePageGuard() { Release(); }

  WritePageGuard(const WritePageGuard&) = delete;
  WritePageGuard& operator=(const WritePageGuard&) = delete;

  bool valid() const { return page_ != nullptr; }
  char* data() { return page_->data(); }
  const char* data() const { return page_->data(); }
  PageId page_id() const { return page_->page_id(); }
  Lsn page_lsn() const { return page_->page_lsn(); }

  void MarkDirty() { dirty_ = true; }
  void set_page_lsn(Lsn lsn) {
    page_->set_page_lsn(lsn);
    dirty_ = true;
  }

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

class BufferPool {
 public:
  // Every shard keeps at least this many frames; a shard request that
  // would leave shards smaller is halved until it fits (tiny test pools
  // still want eviction to work inside each shard).
  static constexpr size_t kMinPagesPerShard = 4;

  // `shards` must be a power of two; 0 = auto (min(16, hw_concurrency)).
  BufferPool(DiskManager* disk, size_t pool_pages, size_t shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Called with a page LSN before a dirty page with that LSN is written to
  // disk; must flush the log at least that far (the WAL rule).
  void SetWalFlushHook(std::function<Status(Lsn)> hook) {
    wal_flush_ = std::move(hook);
  }

  // Guard-based accessors (preferred).
  StatusOr<ReadPageGuard> FetchRead(PageId page_id);
  StatusOr<WritePageGuard> FetchWrite(PageId page_id);
  // Allocates a fresh page and returns it exclusively latched.
  StatusOr<WritePageGuard> NewPage(PageId* page_id);
  // Same, but never reuses a freed page id (see DiskManager).
  StatusOr<WritePageGuard> NewPageNoReuse(PageId* page_id);

  // Writes one page / all dirty pages to disk (respecting the WAL rule).
  // Neither holds a shard mutex across the disk write or the WAL hook.
  Status FlushPage(PageId page_id);
  Status FlushAll();

  // Crash simulation: drops every frame without flushing.  Pins must be
  // released first (asserted).
  void DiscardAll();

  DiskManager* disk() { return disk_; }

  size_t shard_count() const { return shards_.size(); }

  // Cache-effectiveness counters, summed over the per-shard cells.  A hit
  // is a fetch served from a resident frame; a miss reads the page from
  // disk; fresh-page allocations count as neither.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

  // Registers bufferpool.{hits,misses,evictions} with `registry` (owner =
  // this pool; the destructor detaches them).  Exported as value callbacks
  // summing the per-shard counters.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  friend class ReadPageGuard;
  friend class WritePageGuard;

  // One lock domain: a slice of the frames plus the bookkeeping for the
  // pages resident in them.  alignas keeps neighbouring shards' mutexes
  // and clock hands off each other's cache lines.
  struct alignas(obs::kCacheLineSize) Shard {
    sync::Mutex mu{sync::LockRank::kBufferShard, "bufferpool.shard.mu"};
    // page -> frame index
    std::unordered_map<PageId, size_t> table OIB_GUARDED_BY(mu);
    std::vector<std::unique_ptr<Page>> frames OIB_GUARDED_BY(mu);
    std::vector<size_t> free_list OIB_GUARDED_BY(mu);  // free frame indexes
    size_t hand OIB_GUARDED_BY(mu) = 0;  // CLOCK sweep position
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter evictions;
  };

  Shard& ShardFor(PageId page_id) {
    return *shards_[static_cast<size_t>(page_id) & shard_mask_];
  }

  StatusOr<WritePageGuard> BindNewPage(PageId page_id);
  StatusOr<Page*> FetchPageLocked(Shard& s, PageId page_id)
      OIB_REQUIRES(s.mu);
  StatusOr<Page*> PinNewFrame(Shard& s, PageId page_id) OIB_REQUIRES(s.mu);
  // Frees one frame into s.free_list.
  Status EvictOne(Shard& s) OIB_REQUIRES(s.mu);
  // Lock-free: atomic dirty bit + pin count (release; eviction acquires).
  void Unpin(Page* page, bool dirty);

  DiskManager* disk_;
  std::function<Status(Lsn)> wal_flush_;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;  // set by AttachMetrics
};

}  // namespace oib

#endif  // OIB_STORAGE_BUFFER_POOL_H_
