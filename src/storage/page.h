// A buffer-pool frame holding one disk page, with its latch and pin state.
//
// Terminology follows the paper: a *latch* is the cheap physical-consistency
// lock on a page (share mode for readers, exclusive for updaters); it is
// completely distinct from transaction *locks* (see txn/lock_manager.h).
//
// Every page begins with an 8-byte page LSN (the LSN of the last log record
// describing a change to the page), as required by write-ahead logging.

#ifndef OIB_STORAGE_PAGE_H_
#define OIB_STORAGE_PAGE_H_

#include <atomic>
#include <memory>

#include "common/coding.h"
#include "common/sync.h"
#include "common/types.h"

namespace oib {

// Byte offset where type-specific page payload begins (after the page LSN).
inline constexpr size_t kPageHeaderLsnSize = 8;

class Page {
 public:
  explicit Page(size_t page_size)
      : size_(page_size), data_(new char[page_size]) {
    Reset(kInvalidPageId);
  }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  char* data() { return data_.get(); }
  const char* data() const { return data_.get(); }
  size_t size() const { return size_; }

  PageId page_id() const { return page_id_; }
  void set_page_id(PageId id) { page_id_ = id; }

  Lsn page_lsn() const { return DecodeFixed64(data_.get()); }
  void set_page_lsn(Lsn lsn) { EncodeFixed64(data_.get(), lsn); }

  // Atomic because the writers disagree on which lock covers it: Unpin
  // sets it under the pool mutex while FlushPage clears it under the
  // page S latch.  Relaxed is enough — the bit only gates whether a
  // flush writes the frame, and the data it guards is ordered by the
  // page latch / pool mutex themselves.
  bool is_dirty() const { return dirty_.load(std::memory_order_relaxed); }
  void set_dirty(bool d) { dirty_.store(d, std::memory_order_relaxed); }

  // Unpin releases and pin_count acquires: Unpin happens without any pool
  // lock, so the eviction path's `pin_count() == 0` check is the only
  // synchronization edge ordering the unpinner's page writes before the
  // evictor reads the frame contents for the disk write.
  int pin_count() const { return pin_count_.load(std::memory_order_acquire); }
  void Pin() { pin_count_.fetch_add(1, std::memory_order_relaxed); }
  void Unpin() { pin_count_.fetch_sub(1, std::memory_order_release); }

  // CLOCK reference bit: set on every fetch (the replacement policy's
  // "recently used" signal — one relaxed store instead of an LRU list
  // splice), cleared by the clock hand as it sweeps.
  bool ref() const { return ref_.load(std::memory_order_relaxed); }
  void set_ref(bool r) { ref_.store(r, std::memory_order_relaxed); }

  // Page latch.  S for readers, X for updaters; held only across short
  // critical sections, never across I/O initiated by the holder's caller.
  // Acquisition and release happen in different functions (RAII page
  // guards travel across call boundaries), which the static analysis
  // cannot follow — the latch is enforced by the runtime rank checker
  // only (rank kPageLatch, nestable for crabbing).
  void LatchShared() OIB_NO_THREAD_SAFETY_ANALYSIS { latch_.LockShared(); }
  void UnlatchShared() OIB_NO_THREAD_SAFETY_ANALYSIS {
    latch_.UnlockShared();
  }
  void LatchExclusive() OIB_NO_THREAD_SAFETY_ANALYSIS { latch_.Lock(); }
  void UnlatchExclusive() OIB_NO_THREAD_SAFETY_ANALYSIS { latch_.Unlock(); }
  bool TryLatchExclusive() OIB_NO_THREAD_SAFETY_ANALYSIS {
    return latch_.TryLock();
  }

  // Zeroes content and rebinds the frame to `id`.
  void Reset(PageId id) {
    page_id_ = id;
    dirty_.store(false, std::memory_order_relaxed);
    pin_count_.store(0, std::memory_order_relaxed);
    ref_.store(false, std::memory_order_relaxed);
    std::memset(data_.get(), 0, size_);
  }

 private:
  size_t size_;
  std::unique_ptr<char[]> data_;
  PageId page_id_ = kInvalidPageId;
  std::atomic<bool> dirty_{false};
  std::atomic<bool> ref_{false};
  std::atomic<int> pin_count_{0};
  sync::SharedMutex latch_{sync::LockRank::kPageLatch, "page.latch"};
};

}  // namespace oib

#endif  // OIB_STORAGE_PAGE_H_
