#include "storage/buffer_pool.h"

#include <cassert>

namespace oib {

// ----------------------------- guards -----------------------------

ReadPageGuard& ReadPageGuard::operator=(ReadPageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
  }
  return *this;
}

void ReadPageGuard::Release() {
  if (page_ != nullptr) {
    page_->UnlatchShared();
    pool_->Unpin(page_, /*dirty=*/false);
    page_ = nullptr;
    pool_ = nullptr;
  }
}

WritePageGuard& WritePageGuard::operator=(WritePageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    o.dirty_ = false;
  }
  return *this;
}

void WritePageGuard::Release() {
  if (page_ != nullptr) {
    page_->UnlatchExclusive();
    pool_->Unpin(page_, dirty_);
    page_ = nullptr;
    pool_ = nullptr;
    dirty_ = false;
  }
}

// --------------------------- BufferPool ---------------------------

BufferPool::BufferPool(DiskManager* disk, size_t pool_pages) : disk_(disk) {
  frames_.reserve(pool_pages);
  free_.reserve(pool_pages);
  for (size_t i = 0; i < pool_pages; ++i) {
    frames_.push_back(std::make_unique<Page>(disk->page_size()));
    free_.push_back(pool_pages - 1 - i);
  }
}

BufferPool::~BufferPool() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

void BufferPool::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterCounter("bufferpool.hits", &hits_, this);
  registry->RegisterCounter("bufferpool.misses", &misses_, this);
  registry->RegisterCounter("bufferpool.evictions", &evictions_, this);
}

StatusOr<ReadPageGuard> BufferPool::FetchRead(PageId page_id) {
  Page* page;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto r = FetchPageLocked(page_id);
    if (!r.ok()) return r.status();
    page = *r;
  }
  page->LatchShared();
  return ReadPageGuard(this, page);
}

StatusOr<WritePageGuard> BufferPool::FetchWrite(PageId page_id) {
  Page* page;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto r = FetchPageLocked(page_id);
    if (!r.ok()) return r.status();
    page = *r;
  }
  page->LatchExclusive();
  return WritePageGuard(this, page);
}

StatusOr<WritePageGuard> BufferPool::NewPage(PageId* page_id) {
  auto alloc = disk_->AllocatePage();
  if (!alloc.ok()) return alloc.status();
  *page_id = *alloc;
  return BindNewPage(*page_id);
}

StatusOr<WritePageGuard> BufferPool::NewPageNoReuse(PageId* page_id) {
  auto alloc = disk_->AllocatePageNoReuse();
  if (!alloc.ok()) return alloc.status();
  *page_id = *alloc;
  return BindNewPage(*page_id);
}

StatusOr<WritePageGuard> BufferPool::BindNewPage(PageId page_id) {
  Page* page;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto r = PinNewFrame(page_id);
    if (!r.ok()) return r.status();
    page = *r;
    // Fresh page: contents are zeroes; no disk read needed.
  }
  page->LatchExclusive();
  WritePageGuard guard(this, page);
  guard.MarkDirty();
  return guard;
}

StatusOr<Page*> BufferPool::FetchPageLocked(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Page* page = frames_[it->second].get();
    page->Pin();
    TouchLru(page_id);
    hits_.Inc();
    return page;
  }
  auto r = PinNewFrame(page_id);
  if (!r.ok()) return r.status();
  Page* page = *r;
  misses_.Inc();
  Status s = disk_->ReadPage(page_id, page->data());
  if (!s.ok()) {
    // Roll back the frame binding.
    page->Unpin();
    page_table_.erase(page_id);
    auto lit = lru_pos_.find(page_id);
    if (lit != lru_pos_.end()) {
      lru_.erase(lit->second);
      lru_pos_.erase(lit);
    }
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].get() == page) {
        free_.push_back(i);
        break;
      }
    }
    return s;
  }
  return page;
}

StatusOr<Page*> BufferPool::PinNewFrame(PageId page_id) {
  if (free_.empty()) {
    OIB_RETURN_IF_ERROR(EvictOne());
  }
  size_t idx = free_.back();
  free_.pop_back();
  Page* page = frames_[idx].get();
  page->Reset(page_id);
  page->Pin();
  page_table_[page_id] = idx;
  TouchLru(page_id);
  return page;
}

Status BufferPool::EvictOne() {
  // Scan from least-recently-used; skip pinned frames.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    PageId victim = *it;
    size_t idx = page_table_.at(victim);
    Page* page = frames_[idx].get();
    if (page->pin_count() > 0) continue;
    if (page->is_dirty()) {
      if (wal_flush_) OIB_RETURN_IF_ERROR(wal_flush_(page->page_lsn()));
      OIB_RETURN_IF_ERROR(disk_->WritePage(victim, page->data()));
    }
    page_table_.erase(victim);
    lru_.erase(std::next(it).base());
    lru_pos_.erase(victim);
    free_.push_back(idx);
    evictions_.Inc();
    return Status::OK();
  }
  return Status::Busy("buffer pool exhausted: all pages pinned");
}

void BufferPool::Unpin(Page* page, bool dirty) {
  std::lock_guard<std::mutex> g(mu_);
  if (dirty) page->set_dirty(true);
  page->Unpin();
}

void BufferPool::TouchLru(PageId page_id) {
  auto it = lru_pos_.find(page_id);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(page_id);
  lru_pos_[page_id] = lru_.begin();
}

Status BufferPool::FlushPage(PageId page_id) {
  Page* page;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = page_table_.find(page_id);
    if (it == page_table_.end()) return Status::OK();  // not cached
    page = frames_[it->second].get();
    page->Pin();
  }
  page->LatchShared();
  Status s;
  if (page->is_dirty()) {
    if (wal_flush_) s = wal_flush_(page->page_lsn());
    if (s.ok()) s = disk_->WritePage(page_id, page->data());
    if (s.ok()) page->set_dirty(false);
  }
  page->UnlatchShared();
  Unpin(page, /*dirty=*/false);
  return s;
}

Status BufferPool::FlushAll() {
  std::vector<PageId> cached;
  {
    std::lock_guard<std::mutex> g(mu_);
    cached.reserve(page_table_.size());
    for (const auto& [pid, idx] : page_table_) {
      (void)idx;
      cached.push_back(pid);
    }
  }
  for (PageId pid : cached) {
    OIB_RETURN_IF_ERROR(FlushPage(pid));
  }
  return Status::OK();
}

void BufferPool::DiscardAll() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [pid, idx] : page_table_) {
    (void)pid;
    assert(frames_[idx]->pin_count() == 0 && "discard with live pins");
  }
  page_table_.clear();
  lru_.clear();
  lru_pos_.clear();
  free_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    frames_[i]->Reset(kInvalidPageId);
    free_.push_back(frames_.size() - 1 - i);
  }
}

}  // namespace oib
