#include "storage/buffer_pool.h"

#include <cassert>
#include <thread>

#include "common/failpoint.h"

namespace oib {

// ----------------------------- guards -----------------------------

ReadPageGuard& ReadPageGuard::operator=(ReadPageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
  }
  return *this;
}

void ReadPageGuard::Release() {
  if (page_ != nullptr) {
    page_->UnlatchShared();
    pool_->Unpin(page_, /*dirty=*/false);
    page_ = nullptr;
    pool_ = nullptr;
  }
}

WritePageGuard& WritePageGuard::operator=(WritePageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    o.dirty_ = false;
  }
  return *this;
}

void WritePageGuard::Release() {
  if (page_ != nullptr) {
    page_->UnlatchExclusive();
    pool_->Unpin(page_, dirty_);
    page_ = nullptr;
    pool_ = nullptr;
    dirty_ = false;
  }
}

// --------------------------- BufferPool ---------------------------

namespace {

size_t PickShardCount(size_t requested, size_t pool_pages) {
  size_t shards = requested;
  if (shards == 0) {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    shards = 16 < hw ? 16 : hw;
    // Round down to a power of two (hardware_concurrency need not be one).
    while ((shards & (shards - 1)) != 0) shards &= shards - 1;
  }
  while (shards > 1 &&
         pool_pages / shards < BufferPool::kMinPagesPerShard) {
    shards /= 2;
  }
  return shards;
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t pool_pages, size_t shards)
    : disk_(disk) {
  size_t n = PickShardCount(shards, pool_pages);
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    // Shard i holds frames for pages with (page_id & mask) == i; spread
    // the remainder so shard sizes differ by at most one frame.
    size_t frames = pool_pages / n + (i < pool_pages % n ? 1 : 0);
    shard->frames.reserve(frames);
    shard->free_list.reserve(frames);
    for (size_t f = 0; f < frames; ++f) {
      shard->frames.push_back(std::make_unique<Page>(disk->page_size()));
      shard->free_list.push_back(frames - 1 - f);
    }
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

uint64_t BufferPool::hits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->hits.value();
  return total;
}

uint64_t BufferPool::misses() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->misses.value();
  return total;
}

uint64_t BufferPool::evictions() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->evictions.value();
  return total;
}

void BufferPool::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterValueFn(
      "bufferpool.hits", [this] { return hits(); }, this);
  registry->RegisterValueFn(
      "bufferpool.misses", [this] { return misses(); }, this);
  registry->RegisterValueFn(
      "bufferpool.evictions", [this] { return evictions(); }, this);
  // Per-shard cells so the time-series sampler can plot the hit rate of
  // each lock domain separately (a single hot shard hides behind the sum).
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    std::string prefix = "bufferpool.shard" + std::to_string(i);
    registry->RegisterValueFn(
        prefix + ".hits", [shard] { return shard->hits.value(); }, this);
    registry->RegisterValueFn(
        prefix + ".misses", [shard] { return shard->misses.value(); }, this);
    registry->RegisterValueFn(
        prefix + ".evictions", [shard] { return shard->evictions.value(); },
        this);
  }
}

StatusOr<ReadPageGuard> BufferPool::FetchRead(PageId page_id) {
  Shard& s = ShardFor(page_id);
  Page* page;
  {
    sync::MutexLock g(&s.mu);
    auto r = FetchPageLocked(s, page_id);
    if (!r.ok()) return r.status();
    page = *r;
  }
  page->LatchShared();
  return ReadPageGuard(this, page);
}

StatusOr<WritePageGuard> BufferPool::FetchWrite(PageId page_id) {
  Shard& s = ShardFor(page_id);
  Page* page;
  {
    sync::MutexLock g(&s.mu);
    auto r = FetchPageLocked(s, page_id);
    if (!r.ok()) return r.status();
    page = *r;
  }
  page->LatchExclusive();
  return WritePageGuard(this, page);
}

StatusOr<WritePageGuard> BufferPool::NewPage(PageId* page_id) {
  auto alloc = disk_->AllocatePage();
  if (!alloc.ok()) return alloc.status();
  *page_id = *alloc;
  return BindNewPage(*page_id);
}

StatusOr<WritePageGuard> BufferPool::NewPageNoReuse(PageId* page_id) {
  auto alloc = disk_->AllocatePageNoReuse();
  if (!alloc.ok()) return alloc.status();
  *page_id = *alloc;
  return BindNewPage(*page_id);
}

StatusOr<WritePageGuard> BufferPool::BindNewPage(PageId page_id) {
  Shard& s = ShardFor(page_id);
  Page* page;
  {
    sync::MutexLock g(&s.mu);
    auto r = PinNewFrame(s, page_id);
    if (!r.ok()) return r.status();
    page = *r;
    // Fresh page: contents are zeroes; no disk read needed.
  }
  page->LatchExclusive();
  WritePageGuard guard(this, page);
  guard.MarkDirty();
  return guard;
}

StatusOr<Page*> BufferPool::FetchPageLocked(Shard& s, PageId page_id) {
  auto it = s.table.find(page_id);
  if (it != s.table.end()) {
    Page* page = s.frames[it->second].get();
    page->Pin();
    page->set_ref(true);
    s.hits.Inc();
    return page;
  }
  auto r = PinNewFrame(s, page_id);
  if (!r.ok()) return r.status();
  Page* page = *r;
  s.misses.Inc();
  Status st = disk_->ReadPage(page_id, page->data());
  if (!st.ok()) {
    // Roll back the frame binding.
    page->Unpin();
    page->set_page_id(kInvalidPageId);
    s.table.erase(page_id);
    for (size_t i = 0; i < s.frames.size(); ++i) {
      if (s.frames[i].get() == page) {
        s.free_list.push_back(i);
        break;
      }
    }
    return st;
  }
  return page;
}

StatusOr<Page*> BufferPool::PinNewFrame(Shard& s, PageId page_id) {
  if (s.free_list.empty()) {
    OIB_RETURN_IF_ERROR(EvictOne(s));
  }
  size_t idx = s.free_list.back();
  s.free_list.pop_back();
  Page* page = s.frames[idx].get();
  page->Reset(page_id);
  page->Pin();
  page->set_ref(true);
  s.table[page_id] = idx;
  return page;
}

Status BufferPool::EvictOne(Shard& s) {
  // CLOCK sweep: a frame whose ref bit is set gets a second chance (bit
  // cleared, hand moves on); an unpinned frame with a clear bit is the
  // victim.  Two full revolutions guarantee every unpinned frame has had
  // its bit cleared once, so finding nothing means everything is pinned.
  //
  // The dirty-victim write-back (WAL hook + disk write) runs under this
  // shard's mutex: it stalls only fetches hashing to the same shard, not
  // the whole pool, and keeps the frame from being re-fetched mid-write.
  const size_t n = s.frames.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    size_t idx = s.hand;
    s.hand = (s.hand + 1) % n;
    Page* page = s.frames[idx].get();
    if (page->page_id() == kInvalidPageId) continue;  // free frame
    if (page->pin_count() > 0) continue;
    if (page->ref()) {
      page->set_ref(false);
      continue;
    }
    PageId victim = page->page_id();
    if (page->is_dirty()) {
      // An injected write-back failure keeps the dirty page resident (the
      // fetch that triggered eviction fails instead), so no update is
      // lost — the page is written again on the next eviction attempt.
      OIB_FAIL_POINT("bufferpool.writeback");
      if (wal_flush_) OIB_RETURN_IF_ERROR(wal_flush_(page->page_lsn()));
      OIB_RETURN_IF_ERROR(disk_->WritePage(victim, page->data()));
    }
    s.table.erase(victim);
    page->set_page_id(kInvalidPageId);
    s.free_list.push_back(idx);
    s.evictions.Inc();
    return Status::OK();
  }
  return Status::Busy("buffer pool shard exhausted: all pages pinned");
}

void BufferPool::Unpin(Page* page, bool dirty) {
  // Order matters: the dirty bit must be visible before the pin count
  // drops (Unpin is a release; the evictor's pin_count() read acquires).
  if (dirty) page->set_dirty(true);
  page->Unpin();
}

Status BufferPool::FlushPage(PageId page_id) {
  Shard& s = ShardFor(page_id);
  Page* page;
  {
    sync::MutexLock g(&s.mu);
    auto it = s.table.find(page_id);
    if (it == s.table.end()) return Status::OK();  // not cached
    page = s.frames[it->second].get();
    page->Pin();
  }
  page->LatchShared();
  Status st;
  if (page->is_dirty()) {
    // Not the OIB_FAIL_POINT macro: an early return here would leak the
    // latch and pin, so the hit folds into `st` and unwinds normally.
    static FailPoint* const writeback_fp =
        FailPointRegistry::Instance().GetOrCreate("bufferpool.writeback");
    if (writeback_fp->armed()) st = writeback_fp->Act();
    if (st.ok() && wal_flush_) st = wal_flush_(page->page_lsn());
    if (st.ok()) st = disk_->WritePage(page_id, page->data());
    if (st.ok()) page->set_dirty(false);
  }
  page->UnlatchShared();
  Unpin(page, /*dirty=*/false);
  return st;
}

Status BufferPool::FlushAll() {
  // Collect resident ids per shard under that shard's mutex, then flush
  // them one by one: the I/O (and the WAL-flush hook it may invoke) runs
  // with no shard lock held.
  for (auto& shard : shards_) {
    std::vector<PageId> cached;
    {
      sync::MutexLock g(&shard->mu);
      cached.reserve(shard->table.size());
      for (const auto& [pid, idx] : shard->table) {
        (void)idx;
        cached.push_back(pid);
      }
    }
    for (PageId pid : cached) {
      OIB_RETURN_IF_ERROR(FlushPage(pid));
    }
  }
  return Status::OK();
}

void BufferPool::DiscardAll() {
  for (auto& shard : shards_) {
    sync::MutexLock g(&shard->mu);
    for (const auto& [pid, idx] : shard->table) {
      (void)pid;
      assert(shard->frames[idx]->pin_count() == 0 && "discard with live pins");
    }
    shard->table.clear();
    shard->free_list.clear();
    shard->hand = 0;
    for (size_t i = 0; i < shard->frames.size(); ++i) {
      shard->frames[i]->Reset(kInvalidPageId);
      shard->free_list.push_back(shard->frames.size() - 1 - i);
    }
  }
}

}  // namespace oib
