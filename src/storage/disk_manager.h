// DiskManager: the durable page store underneath the buffer pool.
//
// Two implementations:
//  * InMemoryDisk — a vector of page images.  "Durable" here means "survives
//    Engine::SimulateCrash()", which discards only volatile state (buffer
//    pool, unflushed log).  This is the substrate for all crash/restart
//    tests and benches; it exercises exactly the recovery code paths the
//    paper describes while staying deterministic and fast.
//  * FileDisk — a real file accessed with pread/pwrite; the production
//    durability path, hardened against the faults the crash harness
//    injects (tests/crash/):
//      - every on-disk page slot is [page bytes | CRC32C | page-id echo],
//        so a torn or misdirected write is detected on read;
//      - every page write goes through a single-slot double-write journal
//        (`<path>.dw`) first, so a write torn by a crash is restored from
//        the journal at the next Open;
//      - short writes and EINTR are retried at the syscall loop, and
//        failpoint-injected transient errors are retried with bounded
//        exponential backoff before an error escapes to the caller;
//      - the metadata blob is CRC-protected and replaced atomically
//        (write tmp, fsync, rename).
//    Durability model: the harness kills with SIGKILL, so bytes accepted
//    by write() survive (the OS page cache outlives the process); fsync
//    matters only for power loss, which the harness does not simulate.
//    FileDisk still fsyncs at Sync(), after double-write restore, and on
//    file growth past a sync boundary, to keep the power-loss window
//    bounded.
//
// Both also expose a tiny side-channel metadata blob (PutMeta/GetMeta) used
// to persist the catalog and builder checkpoints; writes to it are atomic
// with respect to crashes, simulated or real.

#ifndef OIB_STORAGE_DISK_MANAGER_H_
#define OIB_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"

namespace oib {

class DiskManager {
 public:
  virtual ~DiskManager() = default;

  virtual Status ReadPage(PageId page_id, char* out) = 0;
  virtual Status WritePage(PageId page_id, const char* data) = 0;

  // Allocates a fresh page id (possibly reusing a freed one).
  virtual StatusOr<PageId> AllocatePage() = 0;
  // Allocates a page id strictly greater than every id allocated so far.
  // Heap files use this so that RID order agrees with scan (chain) order,
  // which SF's Current-RID visibility test requires.
  virtual StatusOr<PageId> AllocatePageNoReuse() = 0;
  // Returns a page to the allocator.  Used by SF restart to discard index
  // pages allocated after the last IB checkpoint (paper section 3.2.4).
  virtual Status FreePage(PageId page_id) = 0;

  // Highest page id ever allocated + 1 (freed pages included).
  virtual PageId PageCount() const = 0;

  virtual Status PutMeta(const std::string& key, const std::string& value) = 0;
  virtual Status GetMeta(const std::string& key, std::string* value) = 0;

  // Forces everything written so far down to stable storage.  A no-op for
  // disks whose writes are immediately "durable" (InMemoryDisk).
  virtual Status Sync() { return Status::OK(); }

  virtual size_t page_size() const = 0;

  // I/O counters (benches report these as proxies for disk cost).
  virtual uint64_t reads() const = 0;
  virtual uint64_t writes() const = 0;
};

class InMemoryDisk : public DiskManager {
 public:
  explicit InMemoryDisk(size_t page_size) : page_size_(page_size) {}

  // Benches simulate an I/O-bound environment (the paper's "several days
  // to scan a petabyte table") by charging a fixed latency per page read.
  void set_read_delay_us(uint32_t us) {
    sync::MutexLock g(&mu_);
    read_delay_us_ = us;
  }

  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  StatusOr<PageId> AllocatePage() override;
  StatusOr<PageId> AllocatePageNoReuse() override;
  Status FreePage(PageId page_id) override;
  PageId PageCount() const override;
  Status PutMeta(const std::string& key, const std::string& value) override;
  Status GetMeta(const std::string& key, std::string* value) override;
  size_t page_size() const override { return page_size_; }
  uint64_t reads() const override;
  uint64_t writes() const override;

 private:
  size_t page_size_;
  mutable sync::Mutex mu_{sync::LockRank::kDisk, "inmemorydisk.mu"};
  std::vector<std::string> pages_ OIB_GUARDED_BY(mu_);
  std::vector<PageId> free_list_ OIB_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> meta_ OIB_GUARDED_BY(mu_);
  uint64_t reads_ OIB_GUARDED_BY(mu_) = 0;
  uint64_t writes_ OIB_GUARDED_BY(mu_) = 0;
  uint32_t read_delay_us_ OIB_GUARDED_BY(mu_) = 0;
};

class FileDisk : public DiskManager {
 public:
  // Bytes appended to each page slot on disk: masked CRC32C over
  // [page bytes, page-id] plus a page-id echo that catches writes
  // landing at the wrong offset.
  static constexpr size_t kPageTrailerSize = 8;

  // Failpoint sites (see common/failpoint.h for the policy grammar):
  //   filedisk.read    error/delay on page reads
  //   filedisk.write   error/short/torn/delay/abort on page writes
  //                    (torn kills the process after the partial write —
  //                    a torn write the process survives cannot exist)
  //   filedisk.sync    error/delay/abort on Sync()
  //   filedisk.meta    error/abort on metadata writes

  // Creates/opens `path` (page store), `path`.meta (metadata blob) and
  // `path`.dw (double-write journal).  Open repairs any write the last
  // crash tore: a trailing partial slot is truncated away, and a torn
  // in-place write is restored from the journal.
  static StatusOr<std::unique_ptr<FileDisk>> Open(const std::string& path,
                                                  size_t page_size);
  ~FileDisk() override;

  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  StatusOr<PageId> AllocatePage() override;
  StatusOr<PageId> AllocatePageNoReuse() override;
  Status FreePage(PageId page_id) override;
  PageId PageCount() const override;
  Status PutMeta(const std::string& key, const std::string& value) override;
  Status GetMeta(const std::string& key, std::string* value) override;
  Status Sync() override;
  size_t page_size() const override { return page_size_; }
  uint64_t reads() const override;
  uint64_t writes() const override;

 private:
  FileDisk(std::string path, int fd, int dw_fd, size_t page_size)
      : path_(std::move(path)),
        fd_(fd),
        dw_fd_(dw_fd),
        page_size_(page_size) {}

  size_t slot_size() const { return page_size_ + kPageTrailerSize; }
  // Page image + trailer as stored on disk.
  std::string ComposeSlot(PageId page_id, const char* data) const;
  // Trailer check; nullptr `out` just validates.
  Status VerifySlot(PageId page_id, const char* slot, char* out) const;

  Status ReadSlotLocked(PageId page_id, char* out) OIB_REQUIRES(mu_);
  Status WriteSlotLocked(PageId page_id, const std::string& slot)
      OIB_REQUIRES(mu_);
  Status ExtendLocked(PageId page_id) OIB_REQUIRES(mu_);
  // Open-time torn-write repair from the double-write journal.
  Status RecoverDoubleWriteLocked() OIB_REQUIRES(mu_);
  Status LoadMeta() OIB_REQUIRES(mu_);
  Status StoreMeta() OIB_REQUIRES(mu_);

  std::string path_;
  int fd_;
  int dw_fd_;
  size_t page_size_;
  mutable sync::Mutex mu_{sync::LockRank::kDisk, "filedisk.mu"};
  PageId page_count_ OIB_GUARDED_BY(mu_) = 0;
  // File size (bytes) covered by the last metadata fsync; growth past a
  // sync boundary triggers an fsync so the file length itself is durable.
  uint64_t meta_synced_size_ OIB_GUARDED_BY(mu_) = 0;
  std::vector<PageId> free_list_ OIB_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> meta_ OIB_GUARDED_BY(mu_);
  uint64_t reads_ OIB_GUARDED_BY(mu_) = 0;
  uint64_t writes_ OIB_GUARDED_BY(mu_) = 0;
};

}  // namespace oib

#endif  // OIB_STORAGE_DISK_MANAGER_H_
