#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/posix_io.h"

namespace oib {

// --------------------------- InMemoryDisk ---------------------------

Status InMemoryDisk::ReadPage(PageId page_id, char* out) {
  uint32_t delay;
  {
    sync::MutexLock g(&mu_);
    if (page_id >= pages_.size()) {
      return Status::IoError("read of unallocated page " +
                             std::to_string(page_id));
    }
    std::memcpy(out, pages_[page_id].data(), page_size_);
    ++reads_;
    delay = read_delay_us_;
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  return Status::OK();
}

Status InMemoryDisk::WritePage(PageId page_id, const char* data) {
  sync::MutexLock g(&mu_);
  if (page_id >= pages_.size()) {
    return Status::IoError("write of unallocated page " +
                           std::to_string(page_id));
  }
  pages_[page_id].assign(data, page_size_);
  ++writes_;
  return Status::OK();
}

StatusOr<PageId> InMemoryDisk::AllocatePage() {
  sync::MutexLock g(&mu_);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id].assign(page_size_, '\0');
    return id;
  }
  PageId id = static_cast<PageId>(pages_.size());
  pages_.emplace_back(page_size_, '\0');
  return id;
}

StatusOr<PageId> InMemoryDisk::AllocatePageNoReuse() {
  sync::MutexLock g(&mu_);
  PageId id = static_cast<PageId>(pages_.size());
  pages_.emplace_back(page_size_, '\0');
  return id;
}

Status InMemoryDisk::FreePage(PageId page_id) {
  sync::MutexLock g(&mu_);
  if (page_id >= pages_.size()) {
    return Status::InvalidArgument("free of unallocated page");
  }
  free_list_.push_back(page_id);
  return Status::OK();
}

PageId InMemoryDisk::PageCount() const {
  sync::MutexLock g(&mu_);
  return static_cast<PageId>(pages_.size());
}

Status InMemoryDisk::PutMeta(const std::string& key,
                             const std::string& value) {
  sync::MutexLock g(&mu_);
  for (auto& kv : meta_) {
    if (kv.first == key) {
      kv.second = value;
      return Status::OK();
    }
  }
  meta_.emplace_back(key, value);
  return Status::OK();
}

Status InMemoryDisk::GetMeta(const std::string& key, std::string* value) {
  sync::MutexLock g(&mu_);
  for (const auto& kv : meta_) {
    if (kv.first == key) {
      *value = kv.second;
      return Status::OK();
    }
  }
  return Status::NotFound("meta key " + key);
}

uint64_t InMemoryDisk::reads() const {
  sync::MutexLock g(&mu_);
  return reads_;
}

uint64_t InMemoryDisk::writes() const {
  sync::MutexLock g(&mu_);
  return writes_;
}

// ----------------------------- FileDisk -----------------------------
//
// On-disk layout of the page store:
//   slot i at byte offset i * (page_size + kPageTrailerSize):
//     [page bytes: page_size][masked CRC32C: 4][page-id echo: 4]
// The CRC covers the page bytes followed by the 4 echo bytes, so a slot
// that is torn, stale-mixed-with-new, or written to the wrong offset
// fails verification.  `<path>.dw` holds the last slot written (the
// double-write journal); `<path>.meta` holds the metadata blob:
//     [count: 4][len-prefixed key/value pairs...][masked CRC32C: 4]

namespace {

// Retry budget for transient I/O errors (including failpoint-injected
// ones): attempts are spaced 50us, 100us, 200us apart.
constexpr int kMaxIoAttempts = 4;
constexpr uint32_t kBackoffBaseUs = 50;

// fsync the page file's metadata (its length) whenever it grows past a
// multiple of this, so a power loss cannot silently shrink the file by
// more than one boundary's worth of freshly extended pages.
constexpr uint64_t kMetaSyncBoundary = 4u << 20;

constexpr uint32_t kDwMagic = 0x4f494244;  // "OIBD"
constexpr size_t kDwHeaderSize = 16;       // magic, page_id, len, crc

bool IsTransientIoError(const Status& s) {
  // Corruption is never transient: retrying a CRC mismatch re-reads the
  // same bad bytes.
  return s.IsInjected() || s.IsIoError();
}

void Backoff(int attempt) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(kBackoffBaseUs << (attempt - 1)));
}

}  // namespace

StatusOr<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path,
                                                   size_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  int dw_fd =
      ::open((path + ".dw").c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (dw_fd < 0) {
    ::close(fd);
    return Status::IoError("cannot open " + path + ".dw: " +
                           std::strerror(errno));
  }
  auto disk =
      std::unique_ptr<FileDisk>(new FileDisk(path, fd, dw_fd, page_size));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IoError(std::string("fstat: ") + std::strerror(errno));
  }
  sync::MutexLock g(&disk->mu_);
  uint64_t size = uint64_t(st.st_size);
  if (size % disk->slot_size() != 0) {
    // A crash mid-extend left a partial trailing slot; the page was never
    // exposed to the caller (AllocatePage did not return), so drop it.
    size -= size % disk->slot_size();
    if (::ftruncate(fd, off_t(size)) != 0) {
      return Status::IoError(std::string("ftruncate: ") +
                             std::strerror(errno));
    }
  }
  disk->page_count_ = PageId(size / disk->slot_size());
  disk->meta_synced_size_ = size;
  OIB_RETURN_IF_ERROR(disk->RecoverDoubleWriteLocked());
  Status s = disk->LoadMeta();
  if (!s.ok() && !s.IsNotFound()) return s;
  return disk;
}

FileDisk::~FileDisk() {
  if (fd_ >= 0) ::close(fd_);
  if (dw_fd_ >= 0) ::close(dw_fd_);
}

std::string FileDisk::ComposeSlot(PageId page_id, const char* data) const {
  std::string slot(data, page_size_);
  std::string echo;
  PutFixed32(&echo, page_id);
  uint32_t crc = crc32c::Extend(crc32c::Value(data, page_size_), echo.data(),
                                echo.size());
  PutFixed32(&slot, crc32c::Mask(crc));
  slot += echo;
  return slot;
}

Status FileDisk::VerifySlot(PageId page_id, const char* slot,
                            char* out) const {
  uint32_t stored_crc = DecodeFixed32(slot + page_size_);
  uint32_t echo = DecodeFixed32(slot + page_size_ + 4);
  uint32_t crc = crc32c::Extend(crc32c::Value(slot, page_size_),
                                slot + page_size_ + 4, 4);
  if (crc32c::Unmask(stored_crc) != crc) {
    return Status::Corruption("page " + std::to_string(page_id) +
                              ": checksum mismatch (torn write?)");
  }
  if (echo != page_id) {
    return Status::Corruption("page " + std::to_string(page_id) +
                              ": misdirected slot (echo says " +
                              std::to_string(echo) + ")");
  }
  if (out != nullptr) std::memcpy(out, slot, page_size_);
  return Status::OK();
}

Status FileDisk::ReadSlotLocked(PageId page_id, char* out) {
  OIB_FAIL_POINT("filedisk.read");
  std::string slot(slot_size(), '\0');
  OIB_RETURN_IF_ERROR(PreadFull(fd_, slot.data(), slot.size(),
                                uint64_t(page_id) * slot_size()));
  return VerifySlot(page_id, slot.data(), out);
}

Status FileDisk::ReadPage(PageId page_id, char* out) {
  sync::MutexLock g(&mu_);
  if (page_id >= page_count_) {
    return Status::IoError("read of unallocated page " +
                           std::to_string(page_id));
  }
  Status s;
  for (int attempt = 1; attempt <= kMaxIoAttempts; ++attempt) {
    if (attempt > 1) Backoff(attempt - 1);
    s = ReadSlotLocked(page_id, out);
    if (s.ok()) {
      ++reads_;
      return s;
    }
    if (!IsTransientIoError(s)) break;
  }
  return s;
}

Status FileDisk::WriteSlotLocked(PageId page_id, const std::string& slot) {
  FailPointHit hit;
  OIB_FAIL_POINT_HIT("filedisk.write", hit);
  if (hit.action == FailPointAction::kReturnError ||
      hit.action == FailPointAction::kAbort) {
    // kAbort never reaches here (Evaluate kills the process).
    return Status::Injected("filedisk.write");
  }

  // Journal first: once the journal record is down, a crash at any point
  // during the in-place write is recoverable at the next Open.
  std::string dw;
  PutFixed32(&dw, kDwMagic);
  PutFixed32(&dw, page_id);
  PutFixed32(&dw, uint32_t(slot.size()));
  PutFixed32(&dw, crc32c::Mask(crc32c::Value(slot.data(), slot.size())));
  dw += slot;
  OIB_RETURN_IF_ERROR(PwriteFull(dw_fd_, dw.data(), dw.size(), 0));

  uint64_t off = uint64_t(page_id) * slot_size();
  if (hit.action == FailPointAction::kShortWrite) {
    // Simulated transient short write: the kernel accepted a prefix; the
    // slot is now torn on disk and the caller sees an error.  A retry (or
    // double-write recovery after a crash) repairs it.
    size_t n = std::min(size_t(hit.arg), slot.size() - 1);
    OIB_RETURN_IF_ERROR(PwriteFull(fd_, slot.data(), n, off));
    return Status::Injected("filedisk.write: short write");
  }
  if (hit.action == FailPointAction::kTornWrite) {
    // Simulated crash mid-write: a prefix lands, the tail is garbage, and
    // the process dies — a torn write the process survives cannot exist.
    std::string torn = slot;
    for (size_t i = std::min(size_t(hit.arg), torn.size() - 1);
         i < torn.size(); ++i) {
      torn[i] = char(torn[i] ^ 0xa5);
    }
    (void)PwriteFull(fd_, torn.data(), torn.size(), off);
    FailPointHardAbort("filedisk.write");
  }
  return PwriteFull(fd_, slot.data(), slot.size(), off);
}

Status FileDisk::WritePage(PageId page_id, const char* data) {
  sync::MutexLock g(&mu_);
  if (page_id >= page_count_) {
    return Status::IoError("write of unallocated page " +
                           std::to_string(page_id));
  }
  std::string slot = ComposeSlot(page_id, data);
  Status s;
  for (int attempt = 1; attempt <= kMaxIoAttempts; ++attempt) {
    if (attempt > 1) Backoff(attempt - 1);
    s = WriteSlotLocked(page_id, slot);
    if (s.ok()) {
      ++writes_;
      return s;
    }
    if (!IsTransientIoError(s)) break;
  }
  return s;
}

Status FileDisk::ExtendLocked(PageId page_id) {
  std::string zeros(page_size_, '\0');
  std::string slot = ComposeSlot(page_id, zeros.data());
  OIB_RETURN_IF_ERROR(
      PwriteFull(fd_, slot.data(), slot.size(), uint64_t(page_id) * slot_size()));
  // First growth past a sync boundary also fsyncs the file metadata so
  // the new length is durable, not just the data blocks.
  uint64_t new_size = uint64_t(page_id + 1) * slot_size();
  if (new_size / kMetaSyncBoundary != meta_synced_size_ / kMetaSyncBoundary) {
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("fsync: ") + std::strerror(errno));
    }
    meta_synced_size_ = new_size;
  }
  return Status::OK();
}

StatusOr<PageId> FileDisk::AllocatePage() {
  sync::MutexLock g(&mu_);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  PageId id = page_count_;
  OIB_RETURN_IF_ERROR(ExtendLocked(id));
  ++page_count_;
  return id;
}

StatusOr<PageId> FileDisk::AllocatePageNoReuse() {
  sync::MutexLock g(&mu_);
  PageId id = page_count_;
  OIB_RETURN_IF_ERROR(ExtendLocked(id));
  ++page_count_;
  return id;
}

Status FileDisk::FreePage(PageId page_id) {
  sync::MutexLock g(&mu_);
  free_list_.push_back(page_id);
  return Status::OK();
}

PageId FileDisk::PageCount() const {
  sync::MutexLock g(&mu_);
  return page_count_;
}

Status FileDisk::Sync() {
  sync::MutexLock g(&mu_);
  OIB_FAIL_POINT("filedisk.sync");
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("fsync: ") + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) == 0) meta_synced_size_ = uint64_t(st.st_size);
  return Status::OK();
}

Status FileDisk::PutMeta(const std::string& key, const std::string& value) {
  sync::MutexLock g(&mu_);
  OIB_FAIL_POINT("filedisk.meta");
  bool found = false;
  for (auto& kv : meta_) {
    if (kv.first == key) {
      kv.second = value;
      found = true;
      break;
    }
  }
  if (!found) meta_.emplace_back(key, value);
  // On failure the in-memory map is ahead of the file; the next
  // successful StoreMeta rewrites the whole blob, so no tear persists.
  return StoreMeta();
}

Status FileDisk::GetMeta(const std::string& key, std::string* value) {
  sync::MutexLock g(&mu_);
  for (const auto& kv : meta_) {
    if (kv.first == key) {
      *value = kv.second;
      return Status::OK();
    }
  }
  return Status::NotFound("meta key " + key);
}

uint64_t FileDisk::reads() const {
  sync::MutexLock g(&mu_);
  return reads_;
}

uint64_t FileDisk::writes() const {
  sync::MutexLock g(&mu_);
  return writes_;
}

Status FileDisk::RecoverDoubleWriteLocked() {
  struct stat st;
  if (::fstat(dw_fd_, &st) != 0 || uint64_t(st.st_size) < kDwHeaderSize) {
    return Status::OK();  // empty or absent journal: nothing in flight
  }
  std::string header(kDwHeaderSize, '\0');
  OIB_RETURN_IF_ERROR(PreadFull(dw_fd_, header.data(), header.size(), 0));
  if (DecodeFixed32(header.data()) != kDwMagic) return Status::OK();
  PageId page_id = DecodeFixed32(header.data() + 4);
  uint32_t len = DecodeFixed32(header.data() + 8);
  uint32_t crc = DecodeFixed32(header.data() + 12);
  if (len != slot_size() || uint64_t(st.st_size) < kDwHeaderSize + len) {
    // Journal from a different geometry or itself torn: the in-place
    // write it would cover never started, so the main file is intact.
    return Status::OK();
  }
  std::string slot(len, '\0');
  OIB_RETURN_IF_ERROR(PreadFull(dw_fd_, slot.data(), len, kDwHeaderSize));
  if (crc32c::Unmask(crc) != crc32c::Value(slot.data(), slot.size())) {
    return Status::OK();  // torn journal write — main file intact
  }
  if (page_id >= page_count_) return Status::OK();
  // Journal record is whole.  If the main slot verifies it is either the
  // old image (in-place write never started — fine, the WAL redoes it) or
  // the new one (write completed); only a torn slot needs restoring.
  std::string main_slot(slot_size(), '\0');
  Status s = PreadFull(fd_, main_slot.data(), main_slot.size(),
                       uint64_t(page_id) * slot_size());
  if (s.ok() && VerifySlot(page_id, main_slot.data(), nullptr).ok()) {
    return Status::OK();
  }
  OIB_RETURN_IF_ERROR(PwriteFull(fd_, slot.data(), slot.size(),
                                 uint64_t(page_id) * slot_size()));
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status FileDisk::LoadMeta() {
  int fd = ::open((path_ + ".meta").c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("no meta file");
  std::string blob;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) blob.append(buf, size_t(n));
  ::close(fd);
  if (blob.size() < 8) return Status::Corruption("meta file truncated");
  uint32_t stored_crc = DecodeFixed32(blob.data() + blob.size() - 4);
  if (crc32c::Unmask(stored_crc) !=
      crc32c::Value(blob.data(), blob.size() - 4)) {
    return Status::Corruption("meta file checksum mismatch");
  }
  BufferReader reader(std::string_view(blob.data(), blob.size() - 4));
  uint32_t count;
  if (!reader.GetFixed32(&count)) return Status::Corruption("meta header");
  for (uint32_t i = 0; i < count; ++i) {
    std::string k, v;
    if (!reader.GetLengthPrefixed(&k) || !reader.GetLengthPrefixed(&v)) {
      return Status::Corruption("meta entry");
    }
    meta_.emplace_back(std::move(k), std::move(v));
  }
  return Status::OK();
}

Status FileDisk::StoreMeta() {
  std::string blob;
  PutFixed32(&blob, uint32_t(meta_.size()));
  for (const auto& kv : meta_) {
    PutLengthPrefixed(&blob, kv.first);
    PutLengthPrefixed(&blob, kv.second);
  }
  PutFixed32(&blob, crc32c::Mask(crc32c::Value(blob.data(), blob.size())));
  // Write-tmp / fsync / rename: the blob replacement is atomic, so a
  // crash leaves either the old or the new metadata, never a mix.
  std::string tmp_path = path_ + ".meta.tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IoError("cannot write meta: " +
                           std::string(std::strerror(errno)));
  }
  Status s = PwriteFull(fd, blob.data(), blob.size(), 0);
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IoError(std::string("fsync meta: ") + std::strerror(errno));
  }
  ::close(fd);
  if (!s.ok()) return s;
  if (::rename(tmp_path.c_str(), (path_ + ".meta").c_str()) != 0) {
    return Status::IoError(std::string("rename meta: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace oib
