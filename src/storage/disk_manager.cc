#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/coding.h"

namespace oib {

// --------------------------- InMemoryDisk ---------------------------

Status InMemoryDisk::ReadPage(PageId page_id, char* out) {
  uint32_t delay;
  {
    sync::MutexLock g(&mu_);
    if (page_id >= pages_.size()) {
      return Status::IoError("read of unallocated page " +
                             std::to_string(page_id));
    }
    std::memcpy(out, pages_[page_id].data(), page_size_);
    ++reads_;
    delay = read_delay_us_;
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  return Status::OK();
}

Status InMemoryDisk::WritePage(PageId page_id, const char* data) {
  sync::MutexLock g(&mu_);
  if (page_id >= pages_.size()) {
    return Status::IoError("write of unallocated page " +
                           std::to_string(page_id));
  }
  pages_[page_id].assign(data, page_size_);
  ++writes_;
  return Status::OK();
}

StatusOr<PageId> InMemoryDisk::AllocatePage() {
  sync::MutexLock g(&mu_);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id].assign(page_size_, '\0');
    return id;
  }
  PageId id = static_cast<PageId>(pages_.size());
  pages_.emplace_back(page_size_, '\0');
  return id;
}

StatusOr<PageId> InMemoryDisk::AllocatePageNoReuse() {
  sync::MutexLock g(&mu_);
  PageId id = static_cast<PageId>(pages_.size());
  pages_.emplace_back(page_size_, '\0');
  return id;
}

Status InMemoryDisk::FreePage(PageId page_id) {
  sync::MutexLock g(&mu_);
  if (page_id >= pages_.size()) {
    return Status::InvalidArgument("free of unallocated page");
  }
  free_list_.push_back(page_id);
  return Status::OK();
}

PageId InMemoryDisk::PageCount() const {
  sync::MutexLock g(&mu_);
  return static_cast<PageId>(pages_.size());
}

Status InMemoryDisk::PutMeta(const std::string& key,
                             const std::string& value) {
  sync::MutexLock g(&mu_);
  for (auto& kv : meta_) {
    if (kv.first == key) {
      kv.second = value;
      return Status::OK();
    }
  }
  meta_.emplace_back(key, value);
  return Status::OK();
}

Status InMemoryDisk::GetMeta(const std::string& key, std::string* value) {
  sync::MutexLock g(&mu_);
  for (const auto& kv : meta_) {
    if (kv.first == key) {
      *value = kv.second;
      return Status::OK();
    }
  }
  return Status::NotFound("meta key " + key);
}

uint64_t InMemoryDisk::reads() const {
  sync::MutexLock g(&mu_);
  return reads_;
}

uint64_t InMemoryDisk::writes() const {
  sync::MutexLock g(&mu_);
  return writes_;
}

// ----------------------------- FileDisk -----------------------------

StatusOr<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path,
                                                   size_t page_size) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  auto disk =
      std::unique_ptr<FileDisk>(new FileDisk(path, f, page_size));
  std::fseek(f, 0, SEEK_END);
  long end = std::ftell(f);
  sync::MutexLock g(&disk->mu_);
  disk->page_count_ = static_cast<PageId>(end / page_size);
  Status s = disk->LoadMeta();
  if (!s.ok() && !s.IsNotFound()) return s;
  return disk;
}

FileDisk::~FileDisk() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDisk::ReadPage(PageId page_id, char* out) {
  sync::MutexLock g(&mu_);
  if (page_id >= page_count_) {
    return Status::IoError("read of unallocated page");
  }
  if (std::fseek(file_, static_cast<long>(page_id) * page_size_, SEEK_SET) !=
      0) {
    return Status::IoError("seek failed");
  }
  if (std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::IoError("short read");
  }
  ++reads_;
  return Status::OK();
}

Status FileDisk::WritePage(PageId page_id, const char* data) {
  sync::MutexLock g(&mu_);
  if (page_id >= page_count_) {
    return Status::IoError("write of unallocated page");
  }
  if (std::fseek(file_, static_cast<long>(page_id) * page_size_, SEEK_SET) !=
      0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(data, 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write");
  }
  ++writes_;
  return Status::OK();
}

StatusOr<PageId> FileDisk::AllocatePage() {
  sync::MutexLock g(&mu_);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  PageId id = page_count_++;
  std::string zeros(page_size_, '\0');
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("extend failed");
  }
  return id;
}

StatusOr<PageId> FileDisk::AllocatePageNoReuse() {
  sync::MutexLock g(&mu_);
  PageId id = page_count_++;
  std::string zeros(page_size_, '\0');
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("extend failed");
  }
  return id;
}

Status FileDisk::FreePage(PageId page_id) {
  sync::MutexLock g(&mu_);
  free_list_.push_back(page_id);
  return Status::OK();
}

PageId FileDisk::PageCount() const {
  sync::MutexLock g(&mu_);
  return page_count_;
}

Status FileDisk::PutMeta(const std::string& key, const std::string& value) {
  sync::MutexLock g(&mu_);
  bool found = false;
  for (auto& kv : meta_) {
    if (kv.first == key) {
      kv.second = value;
      found = true;
      break;
    }
  }
  if (!found) meta_.emplace_back(key, value);
  return StoreMeta();
}

Status FileDisk::GetMeta(const std::string& key, std::string* value) {
  sync::MutexLock g(&mu_);
  for (const auto& kv : meta_) {
    if (kv.first == key) {
      *value = kv.second;
      return Status::OK();
    }
  }
  return Status::NotFound("meta key " + key);
}

uint64_t FileDisk::reads() const {
  sync::MutexLock g(&mu_);
  return reads_;
}

uint64_t FileDisk::writes() const {
  sync::MutexLock g(&mu_);
  return writes_;
}

Status FileDisk::LoadMeta() {
  std::FILE* f = std::fopen((path_ + ".meta").c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no meta file");
  std::string blob;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) blob.append(buf, n);
  std::fclose(f);
  BufferReader reader(blob);
  uint32_t count;
  if (!reader.GetFixed32(&count)) return Status::Corruption("meta header");
  for (uint32_t i = 0; i < count; ++i) {
    std::string k, v;
    if (!reader.GetLengthPrefixed(&k) || !reader.GetLengthPrefixed(&v)) {
      return Status::Corruption("meta entry");
    }
    meta_.emplace_back(std::move(k), std::move(v));
  }
  return Status::OK();
}

Status FileDisk::StoreMeta() {
  std::string blob;
  PutFixed32(&blob, static_cast<uint32_t>(meta_.size()));
  for (const auto& kv : meta_) {
    PutLengthPrefixed(&blob, kv.first);
    PutLengthPrefixed(&blob, kv.second);
  }
  std::FILE* f = std::fopen((path_ + ".meta").c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot write meta");
  size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (written != blob.size()) return Status::IoError("short meta write");
  return Status::OK();
}

}  // namespace oib
