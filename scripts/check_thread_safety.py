#!/usr/bin/env python3
"""Smoke test for the clang thread-safety gate.

Verifies the gate actually bites: compiles a seeded lock-discipline
violation (tests/common/thread_safety_smoke.cc with
OIB_SMOKE_THREAD_SAFETY_VIOLATION defined) and asserts that clang's
-Wthread-safety rejects it, then compiles the same file without the
seed and asserts it is clean.  A gate that silently stopped firing —
wrong flags, macros compiled out, analysis disabled — fails here even
though the main build looks green.

Exits 0 on success, non-zero on failure; exits 0 with a notice when no
clang is available (the gate is a clang-only CI job; local GCC-only
environments skip).
"""

import argparse
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SMOKE_SRC = os.path.join(REPO_ROOT, "tests", "common",
                         "thread_safety_smoke.cc")

BASE_ARGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror=thread-safety",
    "-Werror=thread-safety-beta",
    "-I", os.path.join(REPO_ROOT, "src"),
]


def find_clang(explicit):
    if explicit:
        return explicit
    for name in ("clang++", "clang++-18", "clang++-17", "clang++-16",
                 "clang++-15", "clang++-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_smoke(clang, seeded):
    args = [clang] + BASE_ARGS
    if seeded:
        args.append("-DOIB_SMOKE_THREAD_SAFETY_VIOLATION")
    args.append(SMOKE_SRC)
    return subprocess.run(args, capture_output=True, text=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang", help="clang++ binary to use")
    parser.add_argument("--strict", action="store_true",
                        help="fail (instead of skip) when clang is missing")
    opts = parser.parse_args()

    clang = find_clang(opts.clang)
    if clang is None:
        msg = "check_thread_safety: no clang++ found"
        if opts.strict:
            print(msg, file=sys.stderr)
            return 1
        print(msg + "; skipping (gate runs in the clang CI job)")
        return 0

    seeded = compile_smoke(clang, seeded=True)
    if seeded.returncode == 0:
        print("check_thread_safety: FAIL — the seeded violation compiled "
              "cleanly; -Wthread-safety is not firing", file=sys.stderr)
        return 1
    if "thread-safety" not in seeded.stderr and \
       "-Wthread-safety" not in seeded.stderr:
        print("check_thread_safety: FAIL — seeded compile failed for the "
              "wrong reason:\n" + seeded.stderr, file=sys.stderr)
        return 1

    clean = compile_smoke(clang, seeded=False)
    if clean.returncode != 0:
        print("check_thread_safety: FAIL — the unseeded smoke file should "
              "be clean:\n" + clean.stderr, file=sys.stderr)
        return 1

    print("check_thread_safety: OK — gate fires on the seeded violation "
          "and passes the clean file ({})".format(os.path.basename(clang)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
