#!/usr/bin/env python3
"""Run clang-tidy over the compilation database, in parallel.

Usage:
  scripts/run_clang_tidy.py -p build [paths...]

Reads compile_commands.json from the build directory (configure with
CMAKE_EXPORT_COMPILE_COMMANDS=ON), filters it to first-party sources
(src/, tests/, bench/, examples/ — or the given path prefixes), and runs
clang-tidy with the repo's .clang-tidy over every translation unit.
WarningsAsErrors in .clang-tidy makes any finding fail the run.

Exits 0 when every file is clean, 1 on findings, and 0 with a notice
when clang-tidy is not installed (the gate is enforced by the CI
static-analysis job; GCC-only dev boxes skip).
"""

import argparse
import hashlib
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PREFIXES = ("src/", "tests/", "bench/", "examples/")
CACHE_DIR = os.path.join(REPO_ROOT, ".ctcache")


def file_key(tidy_version, config, entry_cmd, src):
    """Content hash identifying one (file, flags, config, tidy) combo.

    Headers are not hashed, so a header-only change may hit stale cache
    entries for its includers; CI keys the cache directory on the commit
    and falls back to the previous one, which is close enough for a
    WarningsAsErrors gate (a miss just re-runs clang-tidy).
    """
    h = hashlib.sha256()
    for part in (tidy_version, config, entry_cmd):
        h.update(part.encode())
        h.update(b"\0")
    with open(src, "rb") as f:
        h.update(f.read())
    return h.hexdigest()


def find_clang_tidy(explicit):
    if explicit:
        return explicit
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def load_commands(build_dir, prefixes):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print("run_clang_tidy: {} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON".format(db_path),
              file=sys.stderr)
        return None
    with open(db_path) as f:
        entries = json.load(f)
    commands = {}
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, REPO_ROOT)
        if rel.startswith(".."):
            continue  # third-party / generated outside the repo
        if any(rel.startswith(p) for p in prefixes):
            commands[path] = entry.get("command",
                                       " ".join(entry.get("arguments", [])))
    return dict(sorted(commands.items()))


def tidy_one(args):
    tidy, build_dir, src = args
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", src],
        capture_output=True, text=True)
    return src, proc.returncode, proc.stdout, proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build directory with compile_commands.json")
    parser.add_argument("-j", "--jobs", type=int,
                        default=multiprocessing.cpu_count())
    parser.add_argument("--clang-tidy", help="clang-tidy binary to use")
    parser.add_argument("--strict", action="store_true",
                        help="fail (instead of skip) when clang-tidy is "
                             "missing")
    parser.add_argument("paths", nargs="*",
                        help="repo-relative path prefixes to check "
                             "(default: src/ tests/ bench/ examples/)")
    opts = parser.parse_args()

    tidy = find_clang_tidy(opts.clang_tidy)
    if tidy is None:
        msg = "run_clang_tidy: no clang-tidy found"
        if opts.strict:
            print(msg, file=sys.stderr)
            return 1
        print(msg + "; skipping (gate runs in the static-analysis CI job)")
        return 0

    prefixes = tuple(opts.paths) or DEFAULT_PREFIXES
    commands = load_commands(opts.build_dir, prefixes)
    if commands is None:
        return 1
    if not commands:
        print("run_clang_tidy: no sources matched", file=sys.stderr)
        return 1

    tidy_version = subprocess.run([tidy, "--version"], capture_output=True,
                                  text=True).stdout
    with open(os.path.join(REPO_ROOT, ".clang-tidy")) as f:
        config = f.read()
    os.makedirs(CACHE_DIR, exist_ok=True)

    # A cache entry marks one (content, flags, config, tidy) combo clean;
    # files with findings are never cached, so a dirty tree re-runs.
    sources, cached = [], 0
    keys = {}
    for src, cmd in commands.items():
        key = file_key(tidy_version, config, cmd, src)
        keys[src] = key
        if os.path.exists(os.path.join(CACHE_DIR, key)):
            cached += 1
        else:
            sources.append(src)

    print("run_clang_tidy: {} files ({} cached clean), {} jobs, {}".format(
        len(commands), cached, opts.jobs, os.path.basename(tidy)))
    failed = 0
    if sources:
        with multiprocessing.Pool(opts.jobs) as pool:
            work = [(tidy, opts.build_dir, s) for s in sources]
            for src, rc, out, err in pool.imap_unordered(tidy_one, work):
                rel = os.path.relpath(src, REPO_ROOT)
                if rc != 0:
                    failed += 1
                    print("== {} ==".format(rel))
                    if out.strip():
                        print(out.strip())
                    if err.strip():
                        print(err.strip(), file=sys.stderr)
                else:
                    with open(os.path.join(CACHE_DIR, keys[src]), "w"):
                        pass
    if failed:
        print("run_clang_tidy: FAIL — findings in {} of {} files".format(
            failed, len(commands)), file=sys.stderr)
        return 1
    print("run_clang_tidy: OK — {} files clean".format(len(commands)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
