#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and flag regressions.

Usage:
  bench_diff.py <baseline.json> <candidate.json> [--threshold-pct=N]
  bench_diff.py --self-check

Rows are matched by label.  For every shared numeric column the diff is
printed; columns with known polarity are checked against the threshold
(default 10%):

  * higher-is-better: ops_per_sec*, keys_per_sec
  * lower-is-better:  *_ms, *_us, *_ns, *_pct

Also compares the top contended lock ranks (lock_contention section) by
total wait time and the end-to-end span totals.  Exits 1 when any checked
column regresses past the threshold, 2 on usage/parse errors; plain
drift in unchecked columns is reported but never fails the run.

--self-check runs the comparator against synthetic fixtures (improvement,
regression, row mismatch) and exits non-zero if the verdicts are wrong —
CI runs it so a refactor cannot silently neuter the gate.
"""

import json
import sys

HIGHER_IS_BETTER = ("ops_per_sec", "keys_per_sec")
LOWER_IS_BETTER_SUFFIXES = ("_ms", "_us", "_ns", "_pct")

# Columns that are counts/config, not performance: never gated.
NEUTRAL = {"threads", "rows", "commits", "aborts", "wal_flushes",
           "bp_evictions", "label"}


def polarity(column):
    """+1 higher is better, -1 lower is better, 0 don't gate."""
    if column in NEUTRAL:
        return 0
    if any(column.startswith(p) for p in HIGHER_IS_BETTER):
        return 1
    if any(column.endswith(s) for s in LOWER_IS_BETTER_SUFFIXES):
        return -1
    return 0


def pct_change(base, cand):
    if base == 0:
        return 0.0 if cand == 0 else float("inf")
    return 100.0 * (cand - base) / base


def diff_rows(base_doc, cand_doc, threshold_pct, out):
    regressions = []
    base_rows = {r["label"]: r for r in base_doc.get("rows", [])
                 if isinstance(r, dict) and "label" in r}
    cand_rows = {r["label"]: r for r in cand_doc.get("rows", [])
                 if isinstance(r, dict) and "label" in r}
    for label in base_rows:
        if label not in cand_rows:
            out.append("  row %r: present in baseline only" % label)
    for label in cand_rows:
        if label not in base_rows:
            out.append("  row %r: present in candidate only" % label)
    for label in sorted(set(base_rows) & set(cand_rows)):
        b, c = base_rows[label], cand_rows[label]
        for col in sorted(set(b) & set(c) - {"label"}):
            bv, cv = b[col], c[col]
            if not (isinstance(bv, (int, float))
                    and isinstance(cv, (int, float))):
                continue
            change = pct_change(bv, cv)
            pol = polarity(col)
            regressed = (pol == 1 and change < -threshold_pct) or \
                        (pol == -1 and change > threshold_pct)
            mark = " <-- REGRESSION" if regressed else ""
            if regressed or abs(change) >= threshold_pct / 2:
                out.append("  %s.%s: %g -> %g (%+.1f%%)%s"
                           % (label, col, bv, cv, change, mark))
            if regressed:
                regressions.append("%s.%s %+.1f%%" % (label, col, change))
    return regressions


def diff_lock_contention(base_doc, cand_doc, out, top_n=5):
    def top_ranks(doc):
        ranks = doc.get("lock_contention", {}).get("ranks", {})
        items = []
        for name, r in ranks.items():
            wait = r.get("wait", {})
            items.append((wait.get("total_ns", 0), name, r.get("waits", 0)))
        items.sort(reverse=True)
        return items[:top_n]

    base_top = top_ranks(base_doc)
    cand_top = top_ranks(cand_doc)
    if not base_top and not cand_top:
        return
    out.append("  top contended ranks (total wait ns, waits):")
    base_by_name = {name: (total, waits) for total, name, waits in base_top}
    for total, name, waits in cand_top:
        btotal, bwaits = base_by_name.get(name, (0, 0))
        out.append("    %-16s %12d (%d waits)   baseline %12d (%d waits)"
                   % (name, total, waits, btotal, bwaits))
    for total, name, waits in base_top:
        if name not in {n for _, n, _ in cand_top}:
            out.append("    %-16s dropped out of top-%d (baseline %d ns)"
                       % (name, top_n, total))


def run_diff(base_path, cand_path, threshold_pct):
    try:
        with open(base_path, encoding="utf-8") as f:
            base_doc = json.load(f)
        with open(cand_path, encoding="utf-8") as f:
            cand_doc = json.load(f)
    except (OSError, ValueError) as e:
        print("bench_diff: %s" % e, file=sys.stderr)
        return 2
    out = []
    regressions = diff_rows(base_doc, cand_doc, threshold_pct, out)
    diff_lock_contention(base_doc, cand_doc, out)
    print("bench_diff %s -> %s (threshold %.1f%%)"
          % (base_path, cand_path, threshold_pct))
    for line in out:
        print(line)
    if regressions:
        print("REGRESSIONS: %s" % "; ".join(regressions), file=sys.stderr)
        return 1
    print("no regressions past threshold")
    return 0


def self_check():
    def doc(ops, p99):
        return {
            "experiment": "e9",
            "rows": [{"label": "threads_2",
                      "ops_per_sec_during_build": ops,
                      "update_p99_us": p99,
                      "threads": 2}],
            "lock_contention": {"enabled": True, "ranks": {
                "WalFlush": {"rank": 130, "waits": 10,
                             "wait": {"count": 10, "total_ns": 5000,
                                      "p50_ns": 400, "p99_ns": 900,
                                      "max_ns": 1000},
                             "hold": {"count": 10, "total_ns": 2000,
                                      "p50_ns": 150, "p99_ns": 300,
                                      "max_ns": 400}}}},
        }

    failures = []

    # Identical reports: no regression.
    base = doc(1000.0, 50.0)
    out = []
    if diff_rows(base, doc(1000.0, 50.0), 10.0, out):
        failures.append("identical reports flagged as regression")

    # Throughput down 50%: regression.
    if not diff_rows(base, doc(500.0, 50.0), 10.0, []):
        failures.append("50% throughput drop not flagged")

    # Latency up 3x: regression.
    if not diff_rows(base, doc(1000.0, 150.0), 10.0, []):
        failures.append("3x p99 increase not flagged")

    # Improvement in both: no regression.
    if diff_rows(base, doc(2000.0, 25.0), 10.0, []):
        failures.append("improvement flagged as regression")

    # Neutral column churn (commits) never gates.
    b = doc(1000.0, 50.0)
    c = doc(1000.0, 50.0)
    b["rows"][0]["commits"] = 100
    c["rows"][0]["commits"] = 5
    if diff_rows(b, c, 10.0, []):
        failures.append("neutral column gated")

    # Lock-contention section renders without error.
    out = []
    diff_lock_contention(base, doc(1000.0, 50.0), out)
    if not any("WalFlush" in line for line in out):
        failures.append("lock contention table missing ranks")

    for f in failures:
        print("SELF-CHECK FAIL: %s" % f, file=sys.stderr)
    if not failures:
        print("bench_diff self-check: OK")
    return 1 if failures else 0


def main(argv):
    if "--self-check" in argv[1:]:
        return self_check()
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 10.0
    for a in argv[1:]:
        if a.startswith("--threshold-pct="):
            threshold = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return run_diff(args[0], args[1], threshold)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
