#!/usr/bin/env python3
"""Validate the BENCH_*.json reports emitted by the bench harnesses.

Usage: check_bench_json.py <dir> <experiment> [<experiment> ...]

For every named experiment, <dir>/BENCH_<experiment>.json must exist and
contain the contract documented in EXPERIMENTS.md ("Machine-readable
output"):

  * top-level keys: experiment, rows, metrics, spans, timeseries,
    lock_contention
  * experiment matches the file name
  * rows is a non-empty array, every row has a "label" plus at least one
    numeric value column
  * per-experiment required row columns (e.g. e2/e9 must report
    ops_per_sec_during_build) so a harness that silently stops
    reporting a headline metric fails CI rather than drifting
  * timeseries carries interval_ms and at least one sample with t_ms,
    update_ops_per_sec, wal_lag_bytes, side_file_backlog, bp_hit_rate
  * lock_contention carries "enabled" and a "ranks" object; when a rank
    is present it must report waits plus wait/hold histograms with
    count, total_ns, p50_ns, p99_ns, max_ns

Exits non-zero with one line per violation.
"""

import json
import os
import sys

# Headline columns each experiment's rows must carry.  Deliberately a
# subset of what the harnesses emit: these are the columns EXPERIMENTS.md
# tables are built from.
REQUIRED_ROW_KEYS = {
    "e1": ["total_ms", "threads", "rows", "key_bytes_moved",
           "key_bytes_stored", "key_compression_ratio",
           "leaf_entries_per_page"],
    "e2": ["build_ms", "blocked_ms", "ops_per_sec_during_build",
           "update_p99_us"],
    "e3": [],
    "e4": [],
    "e5": [],
    "e6": [],
    "e7": [],
    "e8": [],
    "e9": ["threads", "build_ms", "ops_per_sec_during_build",
           "update_p99_us", "commits", "failpoint_overhead_pct"],
    "e11": ["rows", "redo_threads", "restart_ms", "records_redone",
            "speedup_vs_serial"],
    "a1": [],
    "micro": ["ns_per_op", "lookups"],
}

# Labels that must be present in an experiment's rows, with the extra
# columns those specific rows must carry.  Catches a harness that drops a
# whole scenario (e.g. the read-heavy hash on/off comparison) while its
# remaining rows still satisfy REQUIRED_ROW_KEYS.
REQUIRED_SCENARIO_ROWS = {
    "e2": {
        "read_heavy_hash_off": ["read_pct", "read_p50_steady_us",
                                "read_p99_steady_us", "read_p50_build_us",
                                "read_p99_build_us"],
        "read_heavy_hash_on": ["read_pct", "read_p50_steady_us",
                               "read_p99_steady_us", "read_p50_build_us",
                               "read_p99_build_us", "hash_hits",
                               "hash_misses", "hash_fallbacks"],
    },
    "micro": {
        "hash_probe_hit": [],
        "hash_probe_miss": [],
        "tree_descend_hit": [],
        "tree_descend_miss": [],
        "read_by_key_hash_on": [],
        "read_by_key_hash_off": [],
    },
}


def check(path, experiment):
    errors = []
    if not os.path.isfile(path):
        return ["%s: missing (harness did not run or did not write it)"
                % path]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unparseable JSON: %s" % (path, e)]

    for key in ("experiment", "rows", "metrics", "spans", "timeseries",
                "lock_contention"):
        if key not in doc:
            errors.append("%s: missing top-level key %r" % (path, key))
    if errors:
        return errors

    if doc["experiment"] != experiment:
        errors.append("%s: experiment is %r, expected %r"
                      % (path, doc["experiment"], experiment))
    rows = doc["rows"]
    if not isinstance(rows, list) or not rows:
        errors.append("%s: rows must be a non-empty array" % path)
        return errors
    required = REQUIRED_ROW_KEYS.get(experiment, [])
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or "label" not in row:
            errors.append("%s: rows[%d] has no label" % (path, i))
            continue
        values = {k: v for k, v in row.items() if k != "label"}
        if not any(isinstance(v, (int, float)) for v in values.values()):
            errors.append("%s: rows[%d] (%s) has no numeric columns"
                          % (path, i, row["label"]))
        for key in required:
            if key not in row:
                errors.append("%s: rows[%d] (%s) missing required column %r"
                              % (path, i, row["label"], key))
            elif not isinstance(row[key], (int, float)):
                errors.append("%s: rows[%d] (%s) column %r is not numeric"
                              % (path, i, row["label"], key))
    by_label = {row.get("label"): row for row in rows
                if isinstance(row, dict)}
    for label, extra in REQUIRED_SCENARIO_ROWS.get(experiment, {}).items():
        row = by_label.get(label)
        if row is None:
            errors.append("%s: missing required scenario row %r"
                          % (path, label))
            continue
        for key in extra:
            if not isinstance(row.get(key), (int, float)):
                errors.append(
                    "%s: scenario row %r missing/non-numeric column %r"
                    % (path, label, key))
    if experiment == "e1":
        errors.extend(check_key_stats(path, rows))
    if not isinstance(doc["metrics"], dict):
        errors.append("%s: metrics is not an object" % path)
    errors.extend(check_timeseries(path, doc["timeseries"]))
    errors.extend(check_lock_contention(path, doc["lock_contention"]))
    return errors


def check_key_stats(path, rows):
    """Sanity-checks the normalized-key statistics e1 reports.

    The sort path stores prefix-compressed key bytes, so stored <= moved
    and the ratio must land in (0, 1]; a ratio of 0 or a stored count
    above moved means the RunStore counters (or their plumbing through
    BuildStats) broke.
    """
    errors = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            continue
        moved = row.get("key_bytes_moved")
        stored = row.get("key_bytes_stored")
        ratio = row.get("key_compression_ratio")
        if not all(isinstance(v, (int, float))
                   for v in (moved, stored, ratio)):
            continue  # missing-column errors already reported
        if moved <= 0:
            errors.append("%s: rows[%d] (%s) key_bytes_moved must be > 0"
                          % (path, i, row.get("label")))
        if stored > moved:
            errors.append(
                "%s: rows[%d] (%s) key_bytes_stored %s > key_bytes_moved %s"
                % (path, i, row.get("label"), stored, moved))
        if not 0.0 < ratio <= 1.0:
            errors.append(
                "%s: rows[%d] (%s) key_compression_ratio %s outside (0, 1]"
                % (path, i, row.get("label"), ratio))
    return errors


SAMPLE_KEYS = ("t_ms", "update_ops_per_sec", "wal_lag_bytes",
               "side_file_backlog", "bp_hit_rate")
HIST_KEYS = ("count", "total_ns", "p50_ns", "p99_ns", "max_ns")


def check_timeseries(path, ts):
    if not isinstance(ts, dict):
        return ["%s: timeseries is not an object" % path]
    errors = []
    if not isinstance(ts.get("interval_ms"), (int, float)):
        errors.append("%s: timeseries.interval_ms missing/non-numeric" % path)
    samples = ts.get("samples")
    if not isinstance(samples, list) or not samples:
        # Every harness starts the sampler and forces a final tick, so an
        # empty series means the wiring broke.
        errors.append("%s: timeseries.samples must be non-empty" % path)
        return errors
    for i, s in enumerate(samples):
        if not isinstance(s, dict):
            errors.append("%s: timeseries.samples[%d] not an object"
                          % (path, i))
            continue
        for key in SAMPLE_KEYS:
            if key not in s:
                errors.append("%s: timeseries.samples[%d] missing %r"
                              % (path, i, key))
        if not isinstance(s.get("bp_hit_rate"), list):
            errors.append("%s: timeseries.samples[%d].bp_hit_rate not a list"
                          % (path, i))
    return errors


def check_lock_contention(path, lc):
    if not isinstance(lc, dict):
        return ["%s: lock_contention is not an object" % path]
    errors = []
    if not isinstance(lc.get("enabled"), bool):
        errors.append("%s: lock_contention.enabled missing/non-bool" % path)
    ranks = lc.get("ranks")
    if not isinstance(ranks, dict):
        return errors + ["%s: lock_contention.ranks is not an object" % path]
    for name, r in ranks.items():
        if not isinstance(r, dict):
            errors.append("%s: lock_contention.ranks[%s] not an object"
                          % (path, name))
            continue
        if not isinstance(r.get("waits"), int):
            errors.append("%s: lock_contention.ranks[%s].waits missing"
                          % (path, name))
        for side in ("wait", "hold"):
            h = r.get(side)
            if not isinstance(h, dict):
                errors.append("%s: lock_contention.ranks[%s].%s missing"
                              % (path, name, side))
                continue
            for key in HIST_KEYS:
                if not isinstance(h.get(key), (int, float)):
                    errors.append(
                        "%s: lock_contention.ranks[%s].%s.%s missing"
                        % (path, name, side, key))
    return errors


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_dir = argv[1]
    failures = []
    for experiment in argv[2:]:
        path = os.path.join(bench_dir, "BENCH_%s.json" % experiment)
        errs = check(path, experiment)
        if errs:
            failures.extend(errs)
        else:
            print("OK %s" % path)
    for e in failures:
        print("FAIL %s" % e, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
