#!/usr/bin/env python3
"""Validate the BENCH_*.json reports emitted by the bench harnesses.

Usage: check_bench_json.py <dir> <experiment> [<experiment> ...]

For every named experiment, <dir>/BENCH_<experiment>.json must exist and
contain the contract documented in EXPERIMENTS.md ("Machine-readable
output"):

  * top-level keys: experiment, rows, metrics, spans
  * experiment matches the file name
  * rows is a non-empty array, every row has a "label" plus at least one
    numeric value column
  * per-experiment required row columns (e.g. e2/e9 must report
    ops_per_sec_during_build) so a harness that silently stops
    reporting a headline metric fails CI rather than drifting

Exits non-zero with one line per violation.
"""

import json
import os
import sys

# Headline columns each experiment's rows must carry.  Deliberately a
# subset of what the harnesses emit: these are the columns EXPERIMENTS.md
# tables are built from.
REQUIRED_ROW_KEYS = {
    "e1": ["total_ms", "threads", "rows"],
    "e2": ["build_ms", "blocked_ms", "ops_per_sec_during_build",
           "update_p99_us"],
    "e3": [],
    "e4": [],
    "e5": [],
    "e6": [],
    "e7": [],
    "e8": [],
    "e9": ["threads", "build_ms", "ops_per_sec_during_build",
           "update_p99_us", "commits"],
    "a1": [],
}


def check(path, experiment):
    errors = []
    if not os.path.isfile(path):
        return ["%s: missing (harness did not run or did not write it)"
                % path]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unparseable JSON: %s" % (path, e)]

    for key in ("experiment", "rows", "metrics", "spans"):
        if key not in doc:
            errors.append("%s: missing top-level key %r" % (path, key))
    if errors:
        return errors

    if doc["experiment"] != experiment:
        errors.append("%s: experiment is %r, expected %r"
                      % (path, doc["experiment"], experiment))
    rows = doc["rows"]
    if not isinstance(rows, list) or not rows:
        errors.append("%s: rows must be a non-empty array" % path)
        return errors
    required = REQUIRED_ROW_KEYS.get(experiment, [])
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or "label" not in row:
            errors.append("%s: rows[%d] has no label" % (path, i))
            continue
        values = {k: v for k, v in row.items() if k != "label"}
        if not any(isinstance(v, (int, float)) for v in values.values()):
            errors.append("%s: rows[%d] (%s) has no numeric columns"
                          % (path, i, row["label"]))
        for key in required:
            if key not in row:
                errors.append("%s: rows[%d] (%s) missing required column %r"
                              % (path, i, row["label"], key))
            elif not isinstance(row[key], (int, float)):
                errors.append("%s: rows[%d] (%s) column %r is not numeric"
                              % (path, i, row["label"], key))
    if not isinstance(doc["metrics"], dict):
        errors.append("%s: metrics is not an object" % path)
    return errors


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_dir = argv[1]
    failures = []
    for experiment in argv[2:]:
        path = os.path.join(bench_dir, "BENCH_%s.json" % experiment)
        errs = check(path, experiment)
        if errs:
            failures.extend(errs)
        else:
            print("OK %s" % path)
    for e in failures:
        print("FAIL %s" % e, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
