#!/usr/bin/env python3
"""Run the randomized kill-point crash harness with seed reporting.

Usage: run_crash_harness.py [--bin PATH] [--iters N] [--seed N]
                            [--algo nsf|sf|both] [--rows N] [--updates N]
                            [--timeout SECS]

Thin wrapper over tests/crash/crash_harness that

  * picks (and always prints) the base seed, so any CI failure is
    reproducible locally: every iteration's seed is derived from the
    base seed + iteration index, and the harness prints a one-line
    REPRO command for each failing iteration;
  * bounds total wall-clock (--timeout, default 1800 s) so a wedged
    harness fails the job instead of hanging it;
  * exits with the harness's status (0 = all iterations clean).

Examples:
  scripts/run_crash_harness.py --iters=200                # fresh seed
  scripts/run_crash_harness.py --iters=1 --seed=123 --algo=nsf  # replay
"""

import argparse
import os
import subprocess
import sys
import time


def main():
    parser = argparse.ArgumentParser(
        description="crash harness wrapper with seed reporting")
    parser.add_argument("--bin", default="build/tests/crash_harness",
                        help="harness binary (default: %(default)s)")
    parser.add_argument("--iters", type=int, default=50)
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed (default: derived from time)")
    parser.add_argument("--algo", default="both",
                        choices=["nsf", "sf", "both"])
    parser.add_argument("--site", default="",
                        help="pin each iteration's first kill to a site "
                             "matching this name prefix (e.g. hash); "
                             "restarts use the full randomized set")
    parser.add_argument("--rows", type=int, default=800)
    parser.add_argument("--updates", type=int, default=2)
    parser.add_argument("--timeout", type=int, default=1800,
                        help="total wall-clock budget in seconds")
    args = parser.parse_args()

    if not os.path.isfile(args.bin):
        print("error: harness binary not found at %s (build it first: "
              "cmake --build build --target crash_harness)" % args.bin,
              file=sys.stderr)
        return 2

    seed = args.seed if args.seed is not None else (time.time_ns() & 0x7FFFFFFFFFFF)
    cmd = [args.bin,
           "--iters=%d" % args.iters,
           "--seed=%d" % seed,
           "--algo=%s" % args.algo,
           "--rows=%d" % args.rows,
           "--updates=%d" % args.updates]
    if args.site:
        cmd.append("--site=%s" % args.site)
    print("base seed: %d" % seed)
    print("reproduce: %s" % " ".join(cmd))
    sys.stdout.flush()

    try:
        proc = subprocess.run(cmd, timeout=args.timeout,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
    except subprocess.TimeoutExpired:
        print("FAIL: harness exceeded %d s budget (base seed %d)"
              % (args.timeout, seed), file=sys.stderr)
        return 3

    # Keep the log readable: drop the per-kill chatter, keep iteration
    # results, violations, REPRO lines, and the final summary.
    repros = []
    for line in proc.stdout.splitlines():
        if "hard abort" in line:
            continue
        if "REPRO:" in line:
            repros.append(line.strip())
        if ("VIOLATION" in line or "FAILED" in line or "REPRO:" in line
                or line.startswith("crash_harness:")):
            print(line)

    if proc.returncode != 0:
        print("FAIL: crash harness reported violations (base seed %d)"
              % seed, file=sys.stderr)
        for r in repros:
            print("  " + r, file=sys.stderr)
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
