#!/usr/bin/env python3
"""Key-hygiene lint for the normalized-key sort/btree layers.

Usage: check_key_hygiene.py [--self-check] [<repo-root>]

After the normalized-key refactor, every key that crosses a function
boundary in src/sort/ and src/btree/ travels as a KeySlice (borrowed
bytes) or NormalizedKey (owned bytes), and every ordering decision is a
memcmp over normalized bytes.  This lint keeps those layers honest:

  * no function PARAMETER in src/sort/ or src/btree/ may type a key as
    std::string / const std::string& — that reintroduces per-call
    allocation and invites locale- or char-signedness-sensitive
    comparisons.  Owned std::string members, locals, and accessor return
    types are fine (keys at rest), so only parameters are flagged.
  * no std::string::compare(...) call sites at all — ordering must go
    through memcmp-based CompareIndexKey / KeySlice::compare.

Exits non-zero with one "file:line: reason" per violation.  --self-check
runs the patterns against embedded positive/negative samples so a regex
regression fails CI rather than silently passing everything.
"""

import os
import re
import sys

# A std::string-typed parameter whose name mentions "key": preceded by an
# opening paren or a comma (i.e. inside a parameter list), not a
# declaration at line start (a local or member) and not a return type
# (which is followed by the function name and '(').
PARAM_RE = re.compile(
    r"[(,]\s*(?:const\s+)?std::string\s*&?\s+\w*key\w*\s*[,)=]")
COMPARE_RE = re.compile(r"\.compare\s*\(")

SCAN_DIRS = ("src/sort", "src/btree")
EXTS = (".h", ".cc")


def scan_file(path):
    violations = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            code = line.split("//", 1)[0]
            if PARAM_RE.search(code):
                violations.append(
                    "%s:%d: std::string-typed key parameter (use KeySlice)"
                    % (path, lineno))
            if COMPARE_RE.search(code):
                violations.append(
                    "%s:%d: std::string::compare on keys (use memcmp-based "
                    "CompareIndexKey / KeySlice)" % (path, lineno))
    return violations


def run(root):
    violations = []
    for rel in SCAN_DIRS:
        base = os.path.join(root, rel)
        if not os.path.isdir(base):
            violations.append("%s: directory missing" % base)
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(EXTS):
                    violations.extend(scan_file(os.path.join(dirpath, name)))
    return violations


SELF_CHECK_POSITIVE = [
    "Status Add(const std::string& key, const Rid& rid);",
    "void Route(std::string key, Rid rid);",
    "int F(int a, const std::string& sep_key, int b);",
    "  if (a.compare(b) < 0) return;",
    "Status AddToLevel(size_t i, std::string high_key = {});",
]

SELF_CHECK_NEGATIVE = [
    "Status Add(KeySlice key, const Rid& rid);",
    "std::string sep_key;",               # owned local/member
    "  std::string high_key_;",
    "const std::string& high_key() const { return high_key_; }",
    "std::string KeyAt(int i) const;",    # materializing accessor
    "// takes const std::string& key (prose, not code)",
]


def self_check():
    failures = []
    for sample in SELF_CHECK_POSITIVE:
        code = sample.split("//", 1)[0]
        if not (PARAM_RE.search(code) or COMPARE_RE.search(code)):
            failures.append("pattern missed violation: %r" % sample)
    for sample in SELF_CHECK_NEGATIVE:
        code = sample.split("//", 1)[0]
        if PARAM_RE.search(code) or COMPARE_RE.search(code):
            failures.append("pattern false-positived on: %r" % sample)
    for f in failures:
        print("SELF-CHECK FAIL %s" % f, file=sys.stderr)
    return 1 if failures else 0


def main(argv):
    if "--self-check" in argv:
        rc = self_check()
        if rc == 0:
            print("self-check OK")
        return rc
    root = argv[1] if len(argv) > 1 else "."
    violations = run(root)
    for v in violations:
        print("FAIL %s" % v, file=sys.stderr)
    if not violations:
        print("key hygiene OK (%s)" % ", ".join(SCAN_DIRS))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
