// online_reindex: the scenario from the paper's introduction — a DBA must
// add a secondary index to a large, busy OLTP table.  We run the same
// reindex three ways (offline / NSF / SF) against a live workload and
// print what each did to transaction availability.
//
// Build & run:   ./build/examples/online_reindex

#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/workload.h"

using namespace oib;

namespace {

struct Outcome {
  double build_ms;
  double blocked_ms;
  uint64_t txns_during_build;
  uint64_t aborts;
};

Outcome Reindex(const std::string& algo) {
  Options options;
  options.buffer_pool_pages = 16384;
  auto env = Env::InMemory(options);
  auto engine = std::move(*Engine::Open(options, env.get()));

  TableId orders = *engine->catalog()->CreateTable("orders");
  WorkloadOptions wo;
  wo.threads = 2;
  auto rids = *Workload::Populate(engine.get(), orders, 20000, wo);

  Workload oltp(engine.get(), orders, wo);
  oltp.Seed(rids, 20000);
  oltp.Start();
  while (oltp.ops_done() < 50) std::this_thread::yield();

  BuildParams params;
  params.name = "orders_by_key";
  params.table = orders;
  params.key_cols = {0};
  IndexId index;
  BuildStats stats;
  uint64_t before = oltp.ops_done();
  auto t0 = std::chrono::steady_clock::now();
  Status s;
  if (algo == "offline") {
    OfflineIndexBuilder b(engine.get());
    s = b.Build(params, &index, &stats);
  } else if (algo == "nsf") {
    NsfIndexBuilder b(engine.get());
    s = b.Build(params, &index, &stats);
  } else {
    SfIndexBuilder b(engine.get());
    s = b.Build(params, &index, &stats);
  }
  double build_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  uint64_t during = oltp.ops_done() - before;
  WorkloadStats ws = oltp.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "%s build failed: %s\n", algo.c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }
  IndexVerifier verifier(engine.get());
  auto report = verifier.Verify(orders, index);
  if (!report.ok() || !report->ok) {
    std::fprintf(stderr, "%s: index inconsistent!\n", algo.c_str());
    std::exit(1);
  }
  return Outcome{build_ms, stats.quiesce_ms, during, ws.aborts};
}

}  // namespace

int main() {
  std::printf("reindexing a live 20k-row OLTP table, three ways:\n\n");
  std::printf("%-8s %10s %12s %18s %8s\n", "algo", "build_ms", "blocked_ms",
              "ops during build", "aborts");
  for (const std::string algo : {"offline", "nsf", "sf"}) {
    Outcome o = Reindex(algo);
    std::printf("%-8s %10.1f %12.2f %18llu %8llu\n", algo.c_str(),
                o.build_ms, o.blocked_ms,
                (unsigned long long)o.txns_during_build,
                (unsigned long long)o.aborts);
  }
  std::printf(
      "\noffline blocks the workload for the whole build; NSF pauses it "
      "only to create the descriptor; SF never pauses it (paper sections "
      "1, 2.2.1, 3.2.1).\n");
  return 0;
}
