// crash_restart: an index build is interrupted by a system failure and
// resumed after restart recovery, without losing all the work — the
// restartability machinery of paper sections 2.2.3, 3.2.4 and 5.
//
// Build & run:   ./build/examples/crash_restart

#include <cstdio>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/workload.h"

using namespace oib;

int main() {
  Options options;
  options.buffer_pool_pages = 16384;
  options.sort_checkpoint_every_keys = 5000;
  options.ib_checkpoint_every_keys = 5000;
  auto env = Env::InMemory(options);
  auto engine = std::move(*Engine::Open(options, env.get()));

  TableId t = *engine->catalog()->CreateTable("big");
  WorkloadOptions wo;
  auto rids = *Workload::Populate(engine.get(), t, 30000, wo);
  std::printf("table loaded: 30000 rows\n");

  // Arm a failure in the middle of the build's scan phase.
  FailPointRegistry::Instance().Arm("sf.scan", 200);
  SfIndexBuilder builder(engine.get());
  BuildParams params;
  params.name = "big_by_key";
  params.table = t;
  params.key_cols = {0};
  IndexId index;
  Status s = builder.Build(params, &index);
  std::printf("build interrupted: %s\n", s.ToString().c_str());

  // The "system failure": volatile state vanishes.
  (void)engine->SimulateCrash();
  engine.reset();
  std::printf("*** crash ***\n");

  // Restart: recovery redoes committed work and rolls back losers; the
  // interrupted build re-attaches so transactions would keep maintaining
  // it even before we resume.
  RecoveryStats rstats;
  engine = std::move(*Engine::Restart(options, env.get(), &rstats));
  std::printf(
      "restart recovery: %llu log records scanned, %llu redone, %llu "
      "loser txns rolled back\n",
      (unsigned long long)rstats.records_scanned,
      (unsigned long long)rstats.records_redone,
      (unsigned long long)rstats.loser_txns);

  // Resume the build from its last checkpoint.
  SfIndexBuilder resumed(engine.get());
  BuildStats stats;
  s = resumed.Resume(t, &stats);
  if (!s.ok()) {
    std::fprintf(stderr, "resume failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "build resumed and finished: re-extracted only %llu of 30000 keys "
      "(%.0f%% of the scan was preserved by sort checkpoints)\n",
      (unsigned long long)stats.keys_extracted,
      100.0 * (30000 - stats.keys_extracted) / 30000);

  auto descs = engine->catalog()->IndexesOf(t);
  IndexVerifier verifier(engine.get());
  auto report = verifier.Verify(t, descs[0].id);
  if (!report.ok() || !report->ok) {
    std::fprintf(stderr, "index inconsistent after resume!\n");
    return 1;
  }
  std::printf("index verified: %llu entries, consistent with the table\n",
              (unsigned long long)report->live_entries);
  return 0;
}
