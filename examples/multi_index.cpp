// multi_index: build several indexes in ONE scan of the data (paper
// section 6.2) while transactions update the table — "since the cost of
// accessing all the data pages may be a significant part of the overall
// cost of index build, it would be very beneficial to build multiple
// indexes in one data scan."
//
// Build & run:   ./build/examples/multi_index

#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/workload.h"

using namespace oib;

int main() {
  Options options;
  options.buffer_pool_pages = 16384;
  auto env = Env::InMemory(options);
  auto engine = std::move(*Engine::Open(options, env.get()));

  TableId t = *engine->catalog()->CreateTable("events");
  WorkloadOptions wo;
  wo.threads = 2;
  auto rids = *Workload::Populate(engine.get(), t, 20000, wo);

  Workload workload(engine.get(), t, wo);
  workload.Seed(rids, 20000);
  workload.Start();
  while (workload.ops_done() < 20) std::this_thread::yield();

  SfIndexBuilder builder(engine.get());
  std::vector<BuildParams> params(2);
  params[0].name = "events_by_key";
  params[0].table = t;
  params[0].key_cols = {0};
  params[1].name = "events_by_payload";
  params[1].table = t;
  params[1].key_cols = {1};

  std::vector<IndexId> ids;
  BuildStats stats;
  Status s = builder.BuildMany(params, &ids, &stats);
  WorkloadStats ws = workload.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "built %zu indexes with a single scan of %llu data pages "
      "(%llu keys extracted per index), while %llu transactions "
      "committed concurrently\n",
      ids.size(), (unsigned long long)stats.data_pages_scanned,
      (unsigned long long)stats.keys_extracted,
      (unsigned long long)ws.commits);

  for (IndexId id : ids) {
    IndexVerifier verifier(engine.get());
    auto report = verifier.Verify(t, id);
    if (!report.ok() || !report->ok) {
      std::fprintf(stderr, "index %u inconsistent!\n", id);
      return 1;
    }
    auto desc = engine->catalog()->descriptor(id);
    std::printf("index '%s': %llu entries, verified\n", desc->name.c_str(),
                (unsigned long long)report->live_entries);
  }
  return 0;
}
