// Quickstart: create a table, load rows, build a B+-tree index ONLINE with
// the SF (side-file) algorithm while transactions keep updating the table,
// then use the index for lookups.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/schema.h"
#include "core/workload.h"

using namespace oib;

int main() {
  // 1. Bring up an engine over an in-memory environment.  (Use
  //    FileDisk for a real on-disk page store; see DESIGN.md.)
  Options options;
  auto env = Env::InMemory(options);
  auto engine_or = Engine::Open(options, env.get());
  if (!engine_or.ok()) {
    std::fprintf(stderr, "open: %s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine = std::move(*engine_or);

  // 2. Create a table and insert some rows.  Records are field vectors;
  //    field 0 is our future index key (fixed-width keys sort correctly).
  TableId accounts = *engine->catalog()->CreateTable("accounts");
  Transaction* txn = engine->Begin();
  std::vector<Rid> rids;
  for (int i = 0; i < 10000; ++i) {
    std::string key = Workload::MakeKey(i, 12);
    auto rid = engine->records()->InsertRecord(
        txn, accounts, Schema::EncodeRecord({key, "balance=100"}));
    if (!rid.ok()) return 1;
    rids.push_back(*rid);
  }
  if (!engine->Commit(txn).ok()) return 1;
  std::printf("loaded 10000 rows\n");

  // 3. Start a concurrent updater — the whole point of the paper is that
  //    this keeps running while the index is being built.
  std::atomic<bool> stop{false};
  std::atomic<int> updates{0};
  std::thread updater([&] {
    Random rng(7);
    while (!stop.load()) {
      Transaction* t = engine->Begin();
      Rid victim = rids[rng.Uniform(rids.size())];
      Status s = engine->records()->UpdateRecord(
          t, accounts,
          victim,
          Schema::EncodeRecord({Workload::MakeKey(rng.Uniform(1000000), 12),
                                "balance=200"}));
      if (s.ok() && engine->Commit(t).ok()) {
        updates.fetch_add(1);
      } else {
        (void)engine->Rollback(t);
      }
    }
  });

  // 4. Build the index online (SF: no quiesce at any point).
  SfIndexBuilder builder(engine.get());
  BuildParams params;
  params.name = "accounts_by_key";
  params.table = accounts;
  params.key_cols = {0};
  IndexId index;
  BuildStats stats;
  Status s = builder.Build(params, &index, &stats);
  stop.store(true);
  updater.join();
  if (!s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "index built online: %llu keys scanned, %llu side-file entries "
      "applied, %d concurrent updates committed during the build\n",
      (unsigned long long)stats.keys_extracted,
      (unsigned long long)stats.side_file_applied, updates.load());

  // 5. Verify and use the index.
  IndexVerifier verifier(engine.get());
  auto report = verifier.Verify(accounts, index);
  if (!report.ok() || !report->ok) {
    std::fprintf(stderr, "verify failed\n");
    return 1;
  }
  std::printf("index verified: %llu live entries match the table exactly\n",
              (unsigned long long)report->live_entries);

  BTree* tree = engine->catalog()->index(index);
  // Point lookup through the index: find the record for a key value.
  auto match = tree->FindKeyValue(Workload::MakeKey(4242, 12));
  if (match.ok() && match->found) {
    auto rec = engine->catalog()->table(accounts)->Get(match->rid);
    std::vector<std::string> fields;
    if (rec.ok() && Schema::DecodeRecord(*rec, &fields).ok()) {
      std::printf("lookup key %s -> rid %s payload '%s'\n",
                  Workload::MakeKey(4242, 12).c_str(),
                  match->rid.ToString().c_str(), fields[1].c_str());
    }
  } else {
    std::printf("key 4242 was moved by the updater — expected!\n");
  }
  return 0;
}
