// E6 — Restartable build: work lost at a crash vs checkpoint interval
// (paper sections 2.2.3, 3.2.4, 5).
//
// Claim: with the restartable sort and the builders' progress checkpoints
// "not all the so-far-accomplished work is lost" at a failure; lost work
// is bounded by the checkpoint interval.  We crash the builder at a fixed
// point and measure how much scanning/inserting the resumed build redoes,
// sweeping the checkpoint interval (0 = checkpoints disabled, i.e. the
// restart-from-scratch strategy the paper deems "probably unacceptable
// for large tables").

#include <cstring>
#include <filesystem>

#include "common/failpoint.h"

#include "bench/bench_util.h"

namespace oib {
namespace bench {

// --disk=file runs the whole experiment on real files: the crash tears
// down the Env, restart re-attaches from disk, and the resume replays
// through the FileDisk durability path (double-write repair, CRC
// verification) instead of the in-memory page map.
bool g_disk_file = false;
// Redo threads for the restart between crash and resume (--redo-threads=N);
// with --disk=file the restart is a real log replay, so 1 vs N measures
// the partitioned redo on the E6 workload.
size_t g_redo_threads = 1;

namespace {

const uint64_t kRows = BenchRows(40000);

World MakeBenchWorld(uint64_t rows, const Options& options) {
  if (!g_disk_file) return MakeWorld(rows, options);
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "oib_bench_e6_file";
  std::error_code ec;
  fs::remove_all(dir, ec);
  World w;
  w.options = options;
  auto env = Env::OnFiles(dir.string(), options);
  if (!env.ok()) std::abort();
  w.env = std::move(*env);
  auto engine = Engine::Open(options, w.env.get());
  if (!engine.ok()) std::abort();
  w.engine = std::move(*engine);
  auto table = w.engine->catalog()->CreateTable("t");
  if (!table.ok()) std::abort();
  w.table = *table;
  WorkloadOptions wo;
  wo.seed = 42;
  auto rids = Workload::Populate(w.engine.get(), w.table, rows, wo);
  if (!rids.ok()) std::abort();
  w.rids = std::move(*rids);
  return w;
}

void RunOne(const char* algo, size_t ckpt_interval, const char* phase,
            const char* failpoint, int countdown, uint64_t crash_keys,
            BenchReport* report) {
  Options options = DefaultBenchOptions();
  options.sort_checkpoint_every_keys = ckpt_interval;
  options.ib_checkpoint_every_keys = ckpt_interval;
  options.recovery_threads = g_redo_threads;
  World w = MakeBenchWorld(kRows, options);

  FailPointRegistry::Instance().Reset();
  FailPointRegistry::Instance().Arm(failpoint, countdown);
  BuildParams params = KeyIndexParams(w.table, "idx");
  IndexId index;
  Status s;
  double t0 = NowMs();
  if (std::string(algo) == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index);
  }
  double first_ms = NowMs() - t0;
  if (!s.IsInjected()) {
    std::fprintf(stderr, "expected injection, got %s\n",
                 s.ToString().c_str());
    std::abort();
  }
  FailPointRegistry::Instance().Reset();

  // Crash + restart.
  if (!w.engine->SimulateCrash().ok()) std::abort();
  w.engine.reset();
  if (g_disk_file) {
    // Drop the Env too: restart must re-attach from the files.
    w.env.reset();
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "oib_bench_e6_file";
    auto env = Env::OnFiles(dir.string(), options);
    if (!env.ok()) std::abort();
    w.env = std::move(*env);
  }
  RecoveryStats rstats;
  double restart_t0 = NowMs();
  auto engine = Engine::Restart(options, w.env.get(), &rstats);
  double restart_ms = NowMs() - restart_t0;
  if (!engine.ok()) std::abort();
  w.engine = std::move(*engine);

  BuildStats stats;
  t0 = NowMs();
  if (std::string(algo) == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Resume(w.table, &index, &stats);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Resume(w.table, &stats);
  }
  double resume_ms = NowMs() - t0;
  if (!s.ok()) {
    std::fprintf(stderr, "resume failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  auto descs = w.engine->catalog()->IndexesOf(w.table);
  MustBeConsistent(w.engine.get(), w.table, descs[0].id);

  uint64_t redone = std::string(phase) == std::string("scan")
                        ? stats.keys_extracted
                        : (stats.ib.inserted + stats.keys_loaded);
  // Work the resume performed = remaining work at the crash + the wasted
  // re-done tail since the last checkpoint.
  uint64_t remaining = kRows - crash_keys;
  int64_t wasted = static_cast<int64_t>(redone) -
                   static_cast<int64_t>(remaining);
  std::printf("%-5s %-7s %10zu %11.1f %11.1f %12llu %11lld %9.1f%%\n",
              algo, phase, ckpt_interval, first_ms, resume_ms,
              (unsigned long long)redone, (long long)wasted,
              100.0 * wasted / kRows);
  report->AddRow(std::string(algo) + "/" + phase + "/ckpt=" +
                     std::to_string(ckpt_interval),
                 {{"ckpt_interval", static_cast<double>(ckpt_interval)},
                  {"first_ms", first_ms},
                  {"restart_ms", restart_ms},
                  {"redo_threads", static_cast<double>(rstats.redo_threads)},
                  {"records_redone",
                   static_cast<double>(rstats.records_redone)},
                  {"resume_ms", resume_ms},
                  {"resume_keys", static_cast<double>(redone)},
                  {"wasted_keys", static_cast<double>(wasted)},
                  {"waste_pct", 100.0 * wasted / kRows}});
}

void Run() {
  PrintHeader(
      "E6: crash mid-build -> work redone after restart",
      "checkpointed builds redo only the post-checkpoint tail; interval 0 "
      "(no checkpoints) redoes everything — 'probably unacceptable for "
      "large tables' (section 2.2.3)");
  std::printf("%-5s %-7s %10s %11s %11s %12s %11s %10s\n", "algo",
              "phase", "ckpt_keys", "1st_ms", "resume_ms", "resume_keys",
              "wasted", "waste_pct");
  // Crash mid-scan: the scan visits ~rows/75 pages; fail at ~60%.
  BenchReport report("e6");
  int scan_fp = static_cast<int>(kRows / 75 * 0.6);
  uint64_t scan_crash_keys = static_cast<uint64_t>(scan_fp) * 75;
  for (size_t interval : {0ul, 2000ul, 10000ul}) {
    RunOne("nsf", interval, "scan", "nsf.scan", scan_fp, scan_crash_keys,
           &report);
    RunOne("sf", interval, "scan", "sf.scan", scan_fp, scan_crash_keys,
           &report);
  }
  // Crash mid-insert/load at ~60% of keys.
  for (size_t interval : {2000ul, 10000ul}) {
    RunOne("nsf", interval, "insert", "nsf.insert_batch",
           static_cast<int>(kRows * 0.6 / 64),
           static_cast<uint64_t>(kRows * 0.6), &report);
    RunOne("sf", interval, "load", "sf.load",
           static_cast<int>(kRows * 0.6),
           static_cast<uint64_t>(kRows * 0.6), &report);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--disk=file") == 0) {
      oib::bench::g_disk_file = true;
    } else if (std::strcmp(argv[i], "--disk=memory") == 0) {
      oib::bench::g_disk_file = false;
    } else if (std::strncmp(argv[i], "--redo-threads=", 15) == 0) {
      oib::bench::g_redo_threads =
          static_cast<size_t>(std::strtoull(argv[i] + 15, nullptr, 10));
      if (oib::bench::g_redo_threads == 0) oib::bench::g_redo_threads = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--disk=file|memory] [--redo-threads=N]\n",
                   argv[0]);
      return 2;
    }
  }
  oib::bench::Run();
  return 0;
}
