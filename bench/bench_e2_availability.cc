// E2 — Availability during index build (paper sections 1, 2.2.1, 4).
//
// Claim: offline builds block every update for the whole build ("current
// DBMSs do not allow updates... thereby decreasing availability"); NSF
// quiesces updates only while the descriptor is created; SF never
// quiesces.  We run a fixed update workload while each builder works and
// report sustained transaction throughput plus the measured update-blocked
// window.

#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRows = BenchRows(30000);
// The read-heavy serving scenario wants the table (and its index) to
// dwarf the buffer pool, so it runs at twice the availability size.
const uint64_t kReadHeavyRows = BenchRows(60000);

// Point-read share of the read-heavy scenario (--read-pct).
double g_read_pct = 0.9;

struct Result {
  double build_ms = 0;
  double quiesce_ms = 0;
  double txn_per_sec_during_build = 0;
  uint64_t aborts = 0;
  uint64_t commits = 0;
  // Update latency observed *during* the build, from the
  // workload.update_ns histogram (reset right before the build starts).
  double upd_p50_us = 0;
  double upd_p95_us = 0;
  double upd_p99_us = 0;
  double upd_max_us = 0;
};

Result RunOne(const std::string& algo) {
  World w = MakeWorld(kRows);
  WorkloadOptions wo;
  wo.threads = 2;
  // Lock waits must survive an offline build that takes seconds.
  Options opts = w.options;

  Workload workload(w.engine.get(), w.table, wo);
  workload.Seed(w.rids, kRows);
  workload.Start();
  while (workload.ops_done() < 50) std::this_thread::yield();

  // Scope the latency histograms to the build window: everything recorded
  // from here until the build returns happened while the builder ran.
  obs::MetricsRegistry::Default().ResetAll();

  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index = kInvalidIndexId;
  uint64_t ops_before = workload.ops_done();
  double t0 = NowMs();
  Status s;
  if (algo == "offline") {
    OfflineIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else if (algo == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  }
  double build_ms = NowMs() - t0;
  uint64_t ops_during = workload.ops_done() - ops_before;
  // Snapshot the update histogram before stopping the workload so the
  // percentiles cover (almost) exclusively the in-build window.
  obs::HistogramSnapshot upd =
      obs::MetricsRegistry::Default()
          .GetHistogram("workload.update_ns")
          ->Snapshot();
  WorkloadStats wstats = workload.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "%s build failed: %s\n", algo.c_str(),
                 s.ToString().c_str());
    std::abort();
  }
  MustBeConsistent(w.engine.get(), w.table, index);
  (void)opts;

  Result r;
  r.build_ms = build_ms;
  r.quiesce_ms = stats.quiesce_ms;
  r.txn_per_sec_during_build = 1000.0 * ops_during / build_ms;
  r.aborts = wstats.aborts;
  r.commits = wstats.commits;
  r.upd_p50_us = static_cast<double>(upd.Percentile(50)) / 1000.0;
  r.upd_p95_us = static_cast<double>(upd.Percentile(95)) / 1000.0;
  r.upd_p99_us = static_cast<double>(upd.Percentile(99)) / 1000.0;
  r.upd_max_us = static_cast<double>(upd.max) / 1000.0;
  return r;
}

// Read-heavy serving scenario (Griffin fusion): a 90/10 point-read mix
// resolves through a ready index — the hash fast path when
// enable_hash_index is set, a full tree descent otherwise — first at
// steady state, then while an SF build of a second index is in flight.
// Reads are zipfian-skewed so the hot ranks exercise cache behavior.
struct ReadHeavyResult {
  double build_ms = 0;
  double quiesce_ms = 0;
  double ops_per_sec_during_build = 0;
  double read_p50_steady_us = 0;
  double read_p99_steady_us = 0;
  double read_p50_build_us = 0;
  double read_p99_build_us = 0;
  double upd_p99_us = 0;
  double upd_per_sec = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t hash_hits = 0;
  uint64_t hash_misses = 0;
  uint64_t hash_fallbacks = 0;
};

ReadHeavyResult RunReadHeavy(bool with_hash) {
  Options options = DefaultBenchOptions();
  options.enable_hash_index = with_hash;
  // The paper's setting is I/O-bound; reproduce it as E8 does, with a
  // small pool and a per-page read latency.  A tree point read then
  // pays a leaf-page miss on top of the heap-page miss every read pays
  // — and its leaf fetches evict data pages (index probes polluting
  // the pool) — while a hash probe resolves key → RID without touching
  // index pages at all.
  options.buffer_pool_pages = 128;
  World w = MakeWorld(kReadHeavyRows, options);
  static_cast<InMemoryDisk*>(w.env->disk.get())->set_read_delay_us(30);

  // The serving index every point read resolves through.
  OfflineIndexBuilder serving_builder(w.engine.get());
  IndexId serving = kInvalidIndexId;
  Status bs = serving_builder.Build(KeyIndexParams(w.table, "serving"),
                                    &serving);
  if (!bs.ok()) {
    std::fprintf(stderr, "serving build failed: %s\n",
                 bs.ToString().c_str());
    std::abort();
  }

  WorkloadOptions wo;
  wo.threads = 2;
  // read share = g_read_pct; the remainder keeps the default 3:2:3
  // insert:delete:update proportions.
  double rest = 1.0 - g_read_pct;
  wo.insert_pct = rest * 0.375;
  wo.delete_pct = rest * 0.25;
  wo.update_pct = rest * 0.375;
  wo.read_index = serving;
  // Uniform, not zipfian: a skewed read set collapses into the pool and
  // the regime degenerates to the in-memory one bench_micro measures.
  wo.read_dist = ReadKeyDist::kUniform;

  Workload workload(w.engine.get(), w.table, wo);
  workload.Seed(w.rids, kReadHeavyRows);
  workload.Start();
  while (workload.ops_done() < 50) std::this_thread::yield();

  // Steady-state window: no builder running.
  obs::MetricsRegistry::Default().ResetAll();
  uint64_t steady_target = workload.ops_done() + kReadHeavyRows / 8 + 500;
  double steady_deadline = NowMs() + 3000;
  while (workload.ops_done() < steady_target && NowMs() < steady_deadline) {
    std::this_thread::yield();
  }
  obs::HistogramSnapshot read_steady =
      obs::MetricsRegistry::Default()
          .GetHistogram("workload.read_ns")
          ->Snapshot();

  // Build window: SF build of a second index under the same traffic.
  obs::MetricsRegistry::Default().ResetAll();
  BuildStats stats;
  IndexId built = kInvalidIndexId;
  uint64_t ops_before = workload.ops_done();
  double t0 = NowMs();
  SfIndexBuilder builder(w.engine.get());
  Status s = builder.Build(KeyIndexParams(w.table, "built_under_reads"),
                           &built, &stats);
  double build_ms = NowMs() - t0;
  uint64_t ops_during = workload.ops_done() - ops_before;
  obs::HistogramSnapshot read_build =
      obs::MetricsRegistry::Default()
          .GetHistogram("workload.read_ns")
          ->Snapshot();
  obs::HistogramSnapshot upd =
      obs::MetricsRegistry::Default()
          .GetHistogram("workload.update_ns")
          ->Snapshot();
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().TakeSnapshot();
  WorkloadStats wstats = workload.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "sf build (read-heavy) failed: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
  MustBeConsistent(w.engine.get(), w.table, serving);
  MustBeConsistent(w.engine.get(), w.table, built);

  auto counter = [&snap](const char* name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  ReadHeavyResult r;
  r.build_ms = build_ms;
  r.quiesce_ms = stats.quiesce_ms;
  r.ops_per_sec_during_build = 1000.0 * ops_during / build_ms;
  r.read_p50_steady_us =
      static_cast<double>(read_steady.Percentile(50)) / 1000.0;
  r.read_p99_steady_us =
      static_cast<double>(read_steady.Percentile(99)) / 1000.0;
  r.read_p50_build_us =
      static_cast<double>(read_build.Percentile(50)) / 1000.0;
  r.read_p99_build_us =
      static_cast<double>(read_build.Percentile(99)) / 1000.0;
  r.upd_p99_us = static_cast<double>(upd.Percentile(99)) / 1000.0;
  r.upd_per_sec = 1000.0 * static_cast<double>(upd.count) / build_ms;
  r.commits = wstats.commits;
  r.aborts = wstats.aborts;
  r.hash_hits = counter("hash.hits");
  r.hash_misses = counter("hash.misses");
  r.hash_fallbacks = counter("hash.fallbacks");
  return r;
}

void Run() {
  PrintHeader("E2: transaction availability during the build",
              "offline: updates blocked for the whole build; NSF: blocked "
              "only during descriptor creation; SF: never blocked");
  BenchReport report("e2");
  std::printf("%-8s %10s %12s %16s %9s %9s %9s %9s %9s %10s\n", "algo",
              "build_ms", "blocked_ms", "ops/sec(build)", "commits",
              "aborts", "upd_p50us", "upd_p95us", "upd_p99us", "upd_maxus");
  for (const std::string algo : {"offline", "nsf", "sf"}) {
    Result r = RunOne(algo);
    std::printf("%-8s %10.1f %12.2f %16.1f %9llu %9llu %9.1f %9.1f %9.1f "
                "%10.1f\n",
                algo.c_str(), r.build_ms, r.quiesce_ms,
                r.txn_per_sec_during_build, (unsigned long long)r.commits,
                (unsigned long long)r.aborts, r.upd_p50_us, r.upd_p95_us,
                r.upd_p99_us, r.upd_max_us);
    report.AddRow(algo,
                  {{"build_ms", r.build_ms},
                   {"blocked_ms", r.quiesce_ms},
                   {"ops_per_sec_during_build", r.txn_per_sec_during_build},
                   {"commits", static_cast<double>(r.commits)},
                   {"aborts", static_cast<double>(r.aborts)},
                   {"update_p50_us", r.upd_p50_us},
                   {"update_p95_us", r.upd_p95_us},
                   {"update_p99_us", r.upd_p99_us},
                   {"update_max_us", r.upd_max_us}});
  }

  std::printf("\nread-heavy serving (%d%% uniform point reads, I/O-bound "
              "pool, SF build in flight):\n",
              static_cast<int>(g_read_pct * 100));
  std::printf("%-14s %10s %16s %11s %11s %11s %11s %10s %10s\n", "path",
              "build_ms", "ops/sec(build)", "rd_p50(ss)", "rd_p99(ss)",
              "rd_p50(bld)", "rd_p99(bld)", "upd_p99us", "upd/sec");
  for (bool with_hash : {false, true}) {
    ReadHeavyResult r = RunReadHeavy(with_hash);
    const char* label = with_hash ? "read_heavy_hash_on"
                                  : "read_heavy_hash_off";
    std::printf("%-14s %10.1f %16.1f %11.2f %11.2f %11.2f %11.2f %10.1f "
                "%10.1f\n",
                with_hash ? "hash_on" : "hash_off", r.build_ms,
                r.ops_per_sec_during_build, r.read_p50_steady_us,
                r.read_p99_steady_us, r.read_p50_build_us,
                r.read_p99_build_us, r.upd_p99_us, r.upd_per_sec);
    if (with_hash) {
      std::printf("               hash: hits=%llu misses=%llu "
                  "fallbacks=%llu (build window)\n",
                  (unsigned long long)r.hash_hits,
                  (unsigned long long)r.hash_misses,
                  (unsigned long long)r.hash_fallbacks);
    }
    report.AddRow(label,
                  {{"build_ms", r.build_ms},
                   {"blocked_ms", r.quiesce_ms},
                   {"ops_per_sec_during_build", r.ops_per_sec_during_build},
                   {"read_pct", g_read_pct},
                   {"read_p50_steady_us", r.read_p50_steady_us},
                   {"read_p99_steady_us", r.read_p99_steady_us},
                   {"read_p50_build_us", r.read_p50_build_us},
                   {"read_p99_build_us", r.read_p99_build_us},
                   {"update_p99_us", r.upd_p99_us},
                   {"update_ops_per_sec", r.upd_per_sec},
                   {"commits", static_cast<double>(r.commits)},
                   {"aborts", static_cast<double>(r.aborts)},
                   {"hash_hits", static_cast<double>(r.hash_hits)},
                   {"hash_misses", static_cast<double>(r.hash_misses)},
                   {"hash_fallbacks",
                    static_cast<double>(r.hash_fallbacks)}});
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--read-pct=", 11) == 0) {
      double v = std::atof(argv[i] + 11);
      if (v < 0.0 || v >= 1.0) {
        std::fprintf(stderr, "--read-pct must be in [0, 1)\n");
        return 2;
      }
      oib::bench::g_read_pct = v;
    } else {
      std::fprintf(stderr, "usage: %s [--read-pct=0.9]\n", argv[0]);
      return 2;
    }
  }
  oib::bench::Run();
  return 0;
}
