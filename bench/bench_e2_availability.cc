// E2 — Availability during index build (paper sections 1, 2.2.1, 4).
//
// Claim: offline builds block every update for the whole build ("current
// DBMSs do not allow updates... thereby decreasing availability"); NSF
// quiesces updates only while the descriptor is created; SF never
// quiesces.  We run a fixed update workload while each builder works and
// report sustained transaction throughput plus the measured update-blocked
// window.

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRows = BenchRows(30000);

struct Result {
  double build_ms = 0;
  double quiesce_ms = 0;
  double txn_per_sec_during_build = 0;
  uint64_t aborts = 0;
  uint64_t commits = 0;
  // Update latency observed *during* the build, from the
  // workload.update_ns histogram (reset right before the build starts).
  double upd_p50_us = 0;
  double upd_p95_us = 0;
  double upd_p99_us = 0;
  double upd_max_us = 0;
};

Result RunOne(const std::string& algo) {
  World w = MakeWorld(kRows);
  WorkloadOptions wo;
  wo.threads = 2;
  // Lock waits must survive an offline build that takes seconds.
  Options opts = w.options;

  Workload workload(w.engine.get(), w.table, wo);
  workload.Seed(w.rids, kRows);
  workload.Start();
  while (workload.ops_done() < 50) std::this_thread::yield();

  // Scope the latency histograms to the build window: everything recorded
  // from here until the build returns happened while the builder ran.
  obs::MetricsRegistry::Default().ResetAll();

  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index = kInvalidIndexId;
  uint64_t ops_before = workload.ops_done();
  double t0 = NowMs();
  Status s;
  if (algo == "offline") {
    OfflineIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else if (algo == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  }
  double build_ms = NowMs() - t0;
  uint64_t ops_during = workload.ops_done() - ops_before;
  // Snapshot the update histogram before stopping the workload so the
  // percentiles cover (almost) exclusively the in-build window.
  obs::HistogramSnapshot upd =
      obs::MetricsRegistry::Default()
          .GetHistogram("workload.update_ns")
          ->Snapshot();
  WorkloadStats wstats = workload.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "%s build failed: %s\n", algo.c_str(),
                 s.ToString().c_str());
    std::abort();
  }
  MustBeConsistent(w.engine.get(), w.table, index);
  (void)opts;

  Result r;
  r.build_ms = build_ms;
  r.quiesce_ms = stats.quiesce_ms;
  r.txn_per_sec_during_build = 1000.0 * ops_during / build_ms;
  r.aborts = wstats.aborts;
  r.commits = wstats.commits;
  r.upd_p50_us = static_cast<double>(upd.Percentile(50)) / 1000.0;
  r.upd_p95_us = static_cast<double>(upd.Percentile(95)) / 1000.0;
  r.upd_p99_us = static_cast<double>(upd.Percentile(99)) / 1000.0;
  r.upd_max_us = static_cast<double>(upd.max) / 1000.0;
  return r;
}

void Run() {
  PrintHeader("E2: transaction availability during the build",
              "offline: updates blocked for the whole build; NSF: blocked "
              "only during descriptor creation; SF: never blocked");
  BenchReport report("e2");
  std::printf("%-8s %10s %12s %16s %9s %9s %9s %9s %9s %10s\n", "algo",
              "build_ms", "blocked_ms", "ops/sec(build)", "commits",
              "aborts", "upd_p50us", "upd_p95us", "upd_p99us", "upd_maxus");
  for (const std::string algo : {"offline", "nsf", "sf"}) {
    Result r = RunOne(algo);
    std::printf("%-8s %10.1f %12.2f %16.1f %9llu %9llu %9.1f %9.1f %9.1f "
                "%10.1f\n",
                algo.c_str(), r.build_ms, r.quiesce_ms,
                r.txn_per_sec_during_build, (unsigned long long)r.commits,
                (unsigned long long)r.aborts, r.upd_p50_us, r.upd_p95_us,
                r.upd_p99_us, r.upd_max_us);
    report.AddRow(algo,
                  {{"build_ms", r.build_ms},
                   {"blocked_ms", r.quiesce_ms},
                   {"ops_per_sec_during_build", r.txn_per_sec_during_build},
                   {"commits", static_cast<double>(r.commits)},
                   {"aborts", static_cast<double>(r.aborts)},
                   {"update_p50_us", r.upd_p50_us},
                   {"update_p95_us", r.upd_p95_us},
                   {"update_p99_us", r.upd_p99_us},
                   {"update_max_us", r.upd_max_us}});
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
