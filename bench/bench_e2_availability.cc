// E2 — Availability during index build (paper sections 1, 2.2.1, 4).
//
// Claim: offline builds block every update for the whole build ("current
// DBMSs do not allow updates... thereby decreasing availability"); NSF
// quiesces updates only while the descriptor is created; SF never
// quiesces.  We run a fixed update workload while each builder works and
// report sustained transaction throughput plus the measured update-blocked
// window.

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

constexpr uint64_t kRows = 30000;

struct Result {
  double build_ms = 0;
  double quiesce_ms = 0;
  double txn_per_sec_during_build = 0;
  uint64_t aborts = 0;
  uint64_t commits = 0;
};

Result RunOne(const std::string& algo) {
  World w = MakeWorld(kRows);
  WorkloadOptions wo;
  wo.threads = 2;
  // Lock waits must survive an offline build that takes seconds.
  Options opts = w.options;

  Workload workload(w.engine.get(), w.table, wo);
  workload.Seed(w.rids, kRows);
  workload.Start();
  while (workload.ops_done() < 50) std::this_thread::yield();

  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index = kInvalidIndexId;
  uint64_t ops_before = workload.ops_done();
  double t0 = NowMs();
  Status s;
  if (algo == "offline") {
    OfflineIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else if (algo == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  }
  double build_ms = NowMs() - t0;
  uint64_t ops_during = workload.ops_done() - ops_before;
  WorkloadStats wstats = workload.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "%s build failed: %s\n", algo.c_str(),
                 s.ToString().c_str());
    std::abort();
  }
  MustBeConsistent(w.engine.get(), w.table, index);
  (void)opts;

  Result r;
  r.build_ms = build_ms;
  r.quiesce_ms = stats.quiesce_ms;
  r.txn_per_sec_during_build = 1000.0 * ops_during / build_ms;
  r.aborts = wstats.aborts;
  r.commits = wstats.commits;
  return r;
}

void Run() {
  PrintHeader("E2: transaction availability during the build",
              "offline: updates blocked for the whole build; NSF: blocked "
              "only during descriptor creation; SF: never blocked");
  std::printf("%-8s %10s %12s %16s %9s %9s\n", "algo", "build_ms",
              "blocked_ms", "ops/sec(build)", "commits", "aborts");
  for (const std::string algo : {"offline", "nsf", "sf"}) {
    Result r = RunOne(algo);
    std::printf("%-8s %10.1f %12.2f %16.1f %9llu %9llu\n", algo.c_str(),
                r.build_ms, r.quiesce_ms, r.txn_per_sec_during_build,
                (unsigned long long)r.commits, (unsigned long long)r.aborts);
  }
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main() {
  oib::bench::Run();
  return 0;
}
