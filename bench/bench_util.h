// Shared scaffolding for the experiment harnesses (bench_e*): engine
// setup, population, and fixed-width table printing.  Each experiment
// binary regenerates one claim of the paper's Section 4 comparison /
// Section 1 motivation; EXPERIMENTS.md records expected-vs-measured.

#ifndef OIB_BENCH_BENCH_UTIL_H_
#define OIB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/workload.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace oib {
namespace bench {

// Process-wide observability context shared by every harness: the
// time-series sampler plus the --trace-out destination.  Populated by
// InitBenchObs; consumed by BenchReport::Write.
struct BenchObs {
  std::string trace_out;               // empty = no trace export
  uint64_t metrics_interval_ms = 100;  // 0 = sampler off
  std::unique_ptr<obs::StatsSampler> sampler;
};

inline BenchObs& GetBenchObs() {
  static BenchObs* ctx = new BenchObs();
  return *ctx;
}

// Parses and strips the shared observability flags from argv:
//   --trace-out=<path>          write a Chrome/Perfetto trace on report
//   --metrics-interval-ms=<n>   sampler tick (default 100, 0 = off)
// then starts the background sampler.  Call first thing in main(); other
// flags are left in place for the harness's own parsing.
inline void InitBenchObs(int* argc, char** argv) {
  BenchObs& ctx = GetBenchObs();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kTraceOut = "--trace-out=";
    constexpr std::string_view kInterval = "--metrics-interval-ms=";
    if (arg.substr(0, kTraceOut.size()) == kTraceOut) {
      ctx.trace_out = std::string(arg.substr(kTraceOut.size()));
    } else if (arg.substr(0, kInterval.size()) == kInterval) {
      ctx.metrics_interval_ms =
          std::strtoull(argv[i] + kInterval.size(), nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  obs::SetCurrentThreadName("bench.main");
  if (ctx.metrics_interval_ms > 0) {
    ctx.sampler = std::make_unique<obs::StatsSampler>(
        &obs::MetricsRegistry::Default(), ctx.metrics_interval_ms);
    ctx.sampler->Start();
  }
}

struct World {
  Options options;
  std::unique_ptr<Env> env;
  std::unique_ptr<Engine> engine;
  TableId table = 0;
  std::vector<Rid> rids;
};

// Smoke-test override: when OIB_BENCH_ROWS is set (CI bench-smoke job),
// every harness caps its row count to it so the whole suite runs in
// seconds; `scripts/check_bench_json.py` then validates the emitted
// BENCH_*.json.  The numbers are meaningless at smoke sizes — the job
// only proves the harnesses run and report.
inline uint64_t BenchRows(uint64_t full) {
  const char* s = std::getenv("OIB_BENCH_ROWS");
  if (s == nullptr) return full;
  uint64_t v = std::strtoull(s, nullptr, 10);
  return (v > 0 && v < full) ? v : full;
}

inline Options DefaultBenchOptions() {
  Options o;
  o.buffer_pool_pages = 16384;  // 64 MiB: builds mostly in memory
  o.sort_workspace_keys = 16 * 1024;
  o.ib_keys_per_call = 64;
  o.ib_checkpoint_every_keys = 100000;
  o.sort_checkpoint_every_keys = 100000;
  o.sf_apply_batch = 1024;
  return o;
}

// Fresh engine + one table with `rows` records.
inline World MakeWorld(uint64_t rows, Options options = DefaultBenchOptions(),
                       uint64_t seed = 42) {
  World w;
  w.options = options;
  w.env = Env::InMemory(options);
  auto engine = Engine::Open(options, w.env.get());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine open failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  w.engine = std::move(*engine);
  auto table = w.engine->catalog()->CreateTable("t");
  if (!table.ok()) std::abort();
  w.table = *table;
  WorkloadOptions wo;
  wo.seed = seed;
  auto rids = Workload::Populate(w.engine.get(), w.table, rows, wo);
  if (!rids.ok()) {
    std::fprintf(stderr, "populate failed: %s\n",
                 rids.status().ToString().c_str());
    std::abort();
  }
  w.rids = std::move(*rids);
  return w;
}

inline BuildParams KeyIndexParams(TableId table, const std::string& name,
                                  bool unique = false) {
  BuildParams p;
  p.name = name;
  p.table = table;
  p.unique = unique;
  p.key_cols = {0};
  return p;
}

inline double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Aborts (with a message) if the built index does not match the table —
// every experiment double-checks correctness before reporting numbers.
inline void MustBeConsistent(Engine* engine, TableId table, IndexId index) {
  IndexVerifier verifier(engine);
  auto report = verifier.Verify(table, index);
  if (!report.ok() || !report->ok) {
    std::fprintf(stderr, "CONSISTENCY FAILURE: %s\n",
                 report.ok() ? report->error.c_str()
                             : report.status().ToString().c_str());
    std::abort();
  }
}

inline void PrintHeader(const char* title, const char* claim) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper claim: %s\n\n", claim);
}

// Machine-readable companion to the printed tables: each experiment
// registers its result rows here and Write() dumps them — together with a
// metrics-registry snapshot and per-name span aggregates — to
// BENCH_<experiment>.json in the working directory, so results are
// diffable across runs and PRs.
class BenchReport {
 public:
  explicit BenchReport(std::string experiment)
      : experiment_(std::move(experiment)) {}

  // One result row, e.g. label="sf" with {"build_ms": 123.4, ...}.
  // Values keep insertion order.
  void AddRow(std::string label,
              std::vector<std::pair<std::string, double>> values) {
    rows_.emplace_back(std::move(label), std::move(values));
  }

  void Write() {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("experiment");
    w.Value(experiment_);
    w.Key("rows");
    w.BeginArray();
    for (const auto& [label, values] : rows_) {
      w.BeginObject();
      w.Key("label");
      w.Value(label);
      for (const auto& [k, v] : values) {
        w.Key(k);
        w.Value(v);
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("metrics");
    obs::MetricsToJson(obs::MetricsRegistry::Default().TakeSnapshot(), &w);
    w.Key("spans");
    obs::SpansToJson(obs::Tracer::Default().Snapshot(), &w);
    BenchObs& ctx = GetBenchObs();
    w.Key("timeseries");
    {
      std::vector<obs::StatsSampler::Sample> samples;
      if (ctx.sampler != nullptr) {
        // One last tick so even a sub-interval smoke run reports a point.
        ctx.sampler->SampleNow();
        samples = ctx.sampler->Samples();
      }
      obs::TimeseriesToJson(samples, ctx.metrics_interval_ms, &w);
    }
    w.Key("lock_contention");
    obs::LockContentionToJson(obs::CollectLockProfile(), &w);
    w.EndObject();
    std::string path = "BENCH_" + experiment_ + ".json";
    Status s = obs::WriteStringToFile(path, w.str());
    if (!s.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                   s.ToString().c_str());
    } else {
      std::printf("\n[%s written]\n", path.c_str());
    }
    if (!ctx.trace_out.empty()) {
      obs::Tracer& tracer = obs::Tracer::Default();
      Status ts = obs::WriteStringToFile(
          ctx.trace_out,
          obs::TraceToChromeJson(tracer.Snapshot(), tracer.dropped()));
      if (!ts.ok()) {
        std::fprintf(stderr, "failed to write %s: %s\n",
                     ctx.trace_out.c_str(), ts.ToString().c_str());
      } else {
        std::printf("[%s written — load in ui.perfetto.dev]\n",
                    ctx.trace_out.c_str());
      }
    }
  }

 private:
  std::string experiment_;
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      rows_;
};

}  // namespace bench
}  // namespace oib

#endif  // OIB_BENCH_BENCH_UTIL_H_
