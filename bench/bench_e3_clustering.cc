// E3 — Physical clustering of the built index vs concurrent update rate
// (paper section 4).
//
// Claim: "It is expected that the index built by SF would be more
// clustered (i.e., consecutive keys being on consecutive pages on disk)
// than the one built by NSF.  Deviations from the perfect clustering
// achievable without concurrent updates would be a function of the
// transactions' key insert and delete activities during the time of index
// build.  These deviations need to be quantified for both algorithms."
// This harness performs exactly that quantification.

#include "btree/tree_verifier.h"

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRows = BenchRows(30000);

void RunOne(const char* algo, uint32_t update_threads, BenchReport* report) {
  World w = MakeWorld(kRows);
  WorkloadOptions wo;
  wo.threads = update_threads == 0 ? 1 : update_threads;
  wo.update_changes_key = 1.0;  // maximum index churn
  std::unique_ptr<Workload> workload;
  if (update_threads > 0) {
    workload = std::make_unique<Workload>(w.engine.get(), w.table, wo);
    workload->Seed(w.rids, kRows);
    workload->Start();
    while (workload->ops_done() < 20) std::this_thread::yield();
  }

  BuildParams params = KeyIndexParams(w.table, "idx");
  IndexId index = kInvalidIndexId;
  Status s;
  if (std::string(algo) == "offline") {
    OfflineIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index);
  } else if (std::string(algo) == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index);
  }
  uint64_t churn = 0;
  if (workload) {
    WorkloadStats wstats = workload->Stop();
    churn = wstats.ops();
  }
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  MustBeConsistent(w.engine.get(), w.table, index);

  BTree* tree = w.engine->catalog()->index(index);
  TreeVerifier tv(tree, w.engine->pool());
  auto clustering = tv.Clustering();
  if (!clustering.ok()) std::abort();
  std::printf("%-8s %8u %10llu %10llu %10.4f %9.1f %8.3f %8llu\n", algo,
              update_threads, (unsigned long long)churn,
              (unsigned long long)clustering->leaf_pages,
              clustering->adjacency, clustering->mean_gap,
              clustering->utilization,
              (unsigned long long)clustering->pseudo_deleted);
  report->AddRow(
      std::string(algo) + "/threads=" + std::to_string(update_threads),
      {{"update_threads", static_cast<double>(update_threads)},
       {"churn_ops", static_cast<double>(churn)},
       {"leaf_pages", static_cast<double>(clustering->leaf_pages)},
       {"adjacency", clustering->adjacency},
       {"mean_gap", clustering->mean_gap},
       {"utilization", clustering->utilization},
       {"pseudo_deleted", static_cast<double>(clustering->pseudo_deleted)}});
}

void Run() {
  PrintHeader(
      "E3: index clustering vs concurrent update activity",
      "SF stays near the offline (bottom-up) clustering; NSF degrades "
      "faster as update activity grows (quantifying section 4's open "
      "question)");
  BenchReport report("e3");
  std::printf("%-8s %8s %10s %10s %10s %9s %8s %8s\n", "algo", "upd_thr",
              "churn_ops", "leaves", "adjacency", "mean_gap", "util",
              "pseudo");
  for (const char* algo : {"offline", "sf", "nsf"}) {
    for (uint32_t threads : {0u, 1u, 2u}) {
      if (std::string(algo) == "offline" && threads > 0) continue;
      RunOne(algo, threads, &report);
    }
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
