// E5 — Side-file volume and catch-up cost (paper section 3.2.5).
//
// Claims: the side-file accumulates exactly the updates made behind the
// scan; IB catches up by applying it (logged, committed in batches); "for
// improved performance, IB could sort the entries of the side-file...
// before applying those updates to the index".  We sweep concurrent
// update intensity and compare sequential vs sorted application.

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRows = BenchRows(30000);

void RunOne(uint32_t update_threads, bool sorted_apply,
            BenchReport* report) {
  Options options = DefaultBenchOptions();
  options.sf_sort_side_file = sorted_apply;
  World w = MakeWorld(kRows, options);
  WorkloadOptions wo;
  wo.threads = update_threads == 0 ? 1 : update_threads;
  wo.update_changes_key = 1.0;
  std::unique_ptr<Workload> workload;
  if (update_threads > 0) {
    workload = std::make_unique<Workload>(w.engine.get(), w.table, wo);
    workload->Seed(w.rids, kRows);
    workload->Start();
    while (workload->ops_done() < 20) std::this_thread::yield();
  }
  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index;
  SfIndexBuilder builder(w.engine.get());
  Status s = builder.Build(params, &index, &stats);
  if (workload) workload->Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  MustBeConsistent(w.engine.get(), w.table, index);
  std::printf("%8u %-6s %12llu %10.1f %10.1f %10.1f %9llu\n",
              update_threads, sorted_apply ? "sorted" : "seq",
              (unsigned long long)stats.side_file_applied, stats.scan_ms,
              stats.load_ms, stats.apply_ms,
              (unsigned long long)stats.commits);
  report->AddRow(
      std::string(sorted_apply ? "sorted" : "seq") + "/threads=" +
          std::to_string(update_threads),
      {{"update_threads", static_cast<double>(update_threads)},
       {"side_file_applied", static_cast<double>(stats.side_file_applied)},
       {"scan_ms", stats.scan_ms},
       {"load_ms", stats.load_ms},
       {"apply_ms", stats.apply_ms},
       {"commits", static_cast<double>(stats.commits)}});
}

void Run() {
  PrintHeader("E5: side-file accumulation and catch-up",
              "side-file entries grow with update intensity behind the "
              "scan; sorted application (3.2.5) improves locality of the "
              "catch-up inserts");
  std::printf("%8s %-6s %12s %10s %10s %10s %9s\n", "upd_thr", "apply",
              "sf_applied", "scan_ms", "load_ms", "apply_ms", "commits");
  // NOTE: on a single core, update intensities beyond ~2 threads outpace
  // the catch-up entirely (the side-file grows faster than IB drains it
  // and the build never converges) — a starvation regime the paper does
  // not discuss; see EXPERIMENTS.md.
  BenchReport report("e5");
  for (uint32_t threads : {0u, 1u, 2u}) {
    RunOne(threads, /*sorted_apply=*/false, &report);
    if (threads > 0) RunOne(threads, /*sorted_apply=*/true, &report);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
