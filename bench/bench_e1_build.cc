// E1 — Build efficiency without concurrent updates (paper section 4).
//
// Claim: "In SF, IB is able to build the index more efficiently than in
// NSF" because SF writes no log records for IB's key inserts and never
// traverses the tree from the root, while NSF pays per-leaf logging and
// (hint-assisted) traversals.  Offline is the overall floor but blocks
// updates entirely (quantified in E2).
//
// The --threads sweep exercises the parallel BuildPipeline: the scan is
// partitioned across build_threads workers and the final merge overlaps
// the load/insert phase.  scan/merge/load columns are per-stage *busy*
// times (scan sums every worker), total_ms is wall clock; with threads>1
// the busy columns can add up to more than the wall clock.
//
// Usage: bench_e1_build [--threads=1,2,4] [--rows=20000,60000]

#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "btree/tree_verifier.h"

namespace oib {
namespace bench {
namespace {

std::vector<uint64_t> ParseList(const char* s) {
  std::vector<uint64_t> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) break;
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

void RunOne(const char* algo, uint64_t rows, size_t threads,
            BenchReport* report) {
  Options options = DefaultBenchOptions();
  options.build_threads = threads;
  World w = MakeWorld(rows, options);
  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index = kInvalidIndexId;
  double t0 = NowMs();
  Status s;
  if (std::string(algo) == "offline") {
    OfflineIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else if (std::string(algo) == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  }
  double elapsed = NowMs() - t0;
  if (!s.ok()) {
    std::printf("%-8s %8llu %3zu  BUILD FAILED: %s\n", algo,
                (unsigned long long)rows, threads, s.ToString().c_str());
    return;
  }
  MustBeConsistent(w.engine.get(), w.table, index);
  // Key-byte movement through the sort path and final leaf density:
  // together they quantify what the normalized-key + prefix-compression
  // format saves end to end.
  double key_ratio =
      stats.key_bytes_moved > 0
          ? static_cast<double>(stats.key_bytes_stored) /
                static_cast<double>(stats.key_bytes_moved)
          : 1.0;
  ClusteringStats clustering;
  {
    BTree* tree = w.engine->catalog()->index(index);
    TreeVerifier tv(tree, w.engine->pool());
    auto c = tv.Clustering();
    if (c.ok()) clustering = *c;
  }
  std::printf(
      "%-8s %8llu %3zu %10.1f %9.1f %9.1f %9.1f %9.1f %10llu %12llu %8llu "
      "%10llu %6.3f %8.1f\n",
      algo, (unsigned long long)rows, threads, elapsed, stats.scan_ms,
      stats.merge_ms, stats.load_ms, stats.apply_ms,
      (unsigned long long)stats.log_records,
      (unsigned long long)stats.log_bytes,
      (unsigned long long)stats.sort_runs,
      (unsigned long long)stats.key_bytes_moved, key_ratio,
      clustering.entries_per_leaf);
  report->AddRow(
      std::string(algo) + "/" + std::to_string(rows) + "/t" +
          std::to_string(threads),
      {{"rows", static_cast<double>(rows)},
       {"threads", static_cast<double>(threads)},
       {"total_ms", elapsed},
       {"elapsed_ms", stats.elapsed_ms},
       {"scan_busy_ms", stats.scan_ms},
       {"merge_busy_ms", stats.merge_ms},
       {"load_busy_ms", stats.load_ms},
       {"apply_ms", stats.apply_ms},
       {"log_records", static_cast<double>(stats.log_records)},
       {"log_bytes", static_cast<double>(stats.log_bytes)},
       {"sort_runs", static_cast<double>(stats.sort_runs)},
       {"key_bytes_moved", static_cast<double>(stats.key_bytes_moved)},
       {"key_bytes_stored", static_cast<double>(stats.key_bytes_stored)},
       {"key_compression_ratio", key_ratio},
       {"leaf_entries_per_page", clustering.entries_per_leaf},
       {"leaf_prefix_saved_bytes",
        static_cast<double>(clustering.prefix_saved_bytes)},
       {"mean_leaf_prefix_len", clustering.mean_leaf_prefix_len}});
}

void Run(const std::vector<uint64_t>& threads_sweep,
         const std::vector<uint64_t>& rows_sweep) {
  PrintHeader("E1: index build cost, no concurrent updates",
              "SF builds faster than NSF (no IB logging, no traversals); "
              "both close to the offline bottom-up floor; threads>1 "
              "parallelizes scan and overlaps merge with load");
  BenchReport report("e1");
  std::printf("%-8s %8s %3s %10s %9s %9s %9s %9s %10s %12s %8s %10s %6s %8s\n",
              "algo", "rows", "thr", "total_ms", "scan_ms", "merge_ms",
              "load_ms", "apply_ms", "log_recs", "log_bytes", "runs",
              "key_bytes", "kratio", "ent/leaf");
  for (uint64_t rows : rows_sweep) {
    for (const char* algo : {"offline", "sf", "nsf"}) {
      for (uint64_t threads : threads_sweep) {
        // NSF's insert phase is tree-bound; sweep it at baseline only to
        // keep runtime bounded (its scan parallelism mirrors SF's).
        if (std::string(algo) == "nsf" && threads != threads_sweep.front()) {
          continue;
        }
        RunOne(algo, rows, static_cast<size_t>(threads), &report);
      }
    }
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  std::vector<uint64_t> threads = {1, 2, 4};
  std::vector<uint64_t> rows = {20000ull, 60000ull};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = oib::bench::ParseList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = oib::bench::ParseList(argv[i] + 7);
    } else {
      std::fprintf(stderr, "usage: %s [--threads=1,2,4] [--rows=N,...]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads.empty() || rows.empty()) return 2;
  oib::bench::Run(threads, rows);
  return 0;
}
