// E1 — Build efficiency without concurrent updates (paper section 4).
//
// Claim: "In SF, IB is able to build the index more efficiently than in
// NSF" because SF writes no log records for IB's key inserts and never
// traverses the tree from the root, while NSF pays per-leaf logging and
// (hint-assisted) traversals.  Offline is the overall floor but blocks
// updates entirely (quantified in E2).

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

void RunOne(const char* algo, uint64_t rows, BenchReport* report) {
  World w = MakeWorld(rows);
  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index = kInvalidIndexId;
  double t0 = NowMs();
  Status s;
  if (std::string(algo) == "offline") {
    OfflineIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else if (std::string(algo) == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  }
  double elapsed = NowMs() - t0;
  if (!s.ok()) {
    std::printf("%-8s %8llu  BUILD FAILED: %s\n", algo,
                (unsigned long long)rows, s.ToString().c_str());
    return;
  }
  MustBeConsistent(w.engine.get(), w.table, index);
  std::printf(
      "%-8s %8llu %10.1f %9.1f %9.1f %9.1f %10llu %12llu %8llu\n", algo,
      (unsigned long long)rows, elapsed, stats.scan_ms, stats.load_ms,
      stats.apply_ms, (unsigned long long)stats.log_records,
      (unsigned long long)stats.log_bytes,
      (unsigned long long)stats.sort_runs);
  report->AddRow(std::string(algo) + "/" + std::to_string(rows),
                 {{"rows", static_cast<double>(rows)},
                  {"total_ms", elapsed},
                  {"scan_ms", stats.scan_ms},
                  {"load_ms", stats.load_ms},
                  {"apply_ms", stats.apply_ms},
                  {"log_records", static_cast<double>(stats.log_records)},
                  {"log_bytes", static_cast<double>(stats.log_bytes)},
                  {"sort_runs", static_cast<double>(stats.sort_runs)}});
}

void Run() {
  PrintHeader("E1: index build cost, no concurrent updates",
              "SF builds faster than NSF (no IB logging, no traversals); "
              "both close to the offline bottom-up floor");
  BenchReport report("e1");
  std::printf("%-8s %8s %10s %9s %9s %9s %10s %12s %8s\n", "algo", "rows",
              "total_ms", "scan_ms", "load_ms", "apply_ms", "log_recs",
              "log_bytes", "runs");
  for (uint64_t rows : {20000ull, 60000ull}) {
    for (const char* algo : {"offline", "sf", "nsf"}) {
      RunOne(algo, rows, &report);
    }
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main() {
  oib::bench::Run();
  return 0;
}
