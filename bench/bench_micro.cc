// Substrate micro-benchmarks (google-benchmark): B+-tree point ops, IB
// batch inserts, external sort, WAL appends, heap record ops, side-file
// appends, lock acquisition.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "common/key.h"
#include "hashidx/hash_index.h"
#include "sort/external_sorter.h"

namespace oib {
namespace bench {
namespace {

std::string Key8(uint64_t i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "%08llu", (unsigned long long)i);
  return buf;
}

void BM_BtreeInsert(benchmark::State& state) {
  World w = MakeWorld(0);
  auto desc = w.engine->catalog()->CreateIndex("i", w.table, false, {0},
                                               BuildAlgo::kOffline);
  BTree* tree = w.engine->catalog()->index(desc->id);
  Transaction* txn = w.engine->Begin();
  uint64_t i = 0;
  Random rng(1);
  for (auto _ : state) {
    auto r = tree->Insert(txn, Key8(rng.Next() % 10000000), Rid(i++ & 0xffff, 0));
    benchmark::DoNotOptimize(r.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeLookup(benchmark::State& state) {
  World w = MakeWorld(0);
  auto desc = w.engine->catalog()->CreateIndex("i", w.table, false, {0},
                                               BuildAlgo::kOffline);
  BTree* tree = w.engine->catalog()->index(desc->id);
  Transaction* txn = w.engine->Begin();
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    (void)tree->Insert(txn, Key8(i), Rid(i, 0));
  }
  (void)w.engine->Commit(txn);
  Random rng(2);
  for (auto _ : state) {
    int i = static_cast<int>(rng.Uniform(n));
    auto r = tree->Lookup(Key8(i), Rid(i, 0));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeLookup);

void BM_BtreeIbBatchInsert(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  World w = MakeWorld(0);
  auto desc = w.engine->catalog()->CreateIndex("i", w.table, false, {0},
                                               BuildAlgo::kOffline);
  BTree* tree = w.engine->catalog()->index(desc->id);
  Transaction* txn = w.engine->Begin();
  uint64_t next = 0;
  std::vector<std::string> keys(batch);
  for (auto _ : state) {
    std::vector<IndexKeyRef> refs;
    refs.reserve(batch);
    for (size_t j = 0; j < batch; ++j) {
      keys[j] = Key8(next);
      refs.push_back({keys[j], Rid(static_cast<PageId>(next), 0)});
      ++next;
    }
    BTree::IbStats stats;
    auto s = tree->IbInsertBatch(txn, refs, false, nullptr, &stats);
    benchmark::DoNotOptimize(s.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BtreeIbBatchInsert)->Arg(1)->Arg(64)->Arg(256);

void BM_ExternalSortAndMerge(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Options options = DefaultBenchOptions();
  options.sort_workspace_keys = 4096;
  for (auto _ : state) {
    RunStore store;
    ExternalSorter sorter(&store, &options);
    Random rng(7);
    for (size_t i = 0; i < n; ++i) {
      (void)sorter.Add(Key8(rng.Next() % 100000000), Rid(1, 0));
    }
    (void)sorter.FinishInput();
    (void)sorter.PrepareMerge();
    auto cursor = sorter.OpenMerge();
    SortItem item;
    size_t count = 0;
    for (;;) {
      auto more = (*cursor)->Next(&item);
      if (!more.ok() || !*more) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSortAndMerge)->Arg(10000)->Arg(100000);

void BM_WalAppend(benchmark::State& state) {
  LogManager log;
  std::string payload(64, 'x');
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.rm_id = RmId::kHeap;
    rec.txn_id = 1;
    rec.redo = payload;
    benchmark::DoNotOptimize(log.Append(&rec).ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_WalAppend);

void BM_HeapInsert(benchmark::State& state) {
  World w = MakeWorld(0);
  HeapFile* heap = w.engine->catalog()->table(w.table);
  Transaction* txn = w.engine->Begin();
  std::string rec(64, 'r');
  for (auto _ : state) {
    auto r = heap->Insert(txn, rec, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapInsert);

void BM_RecordInsertWithIndexes(benchmark::State& state) {
  int indexes = static_cast<int>(state.range(0));
  World w = MakeWorld(0);
  for (int i = 0; i < indexes; ++i) {
    OfflineIndexBuilder builder(w.engine.get());
    IndexId id;
    BuildParams p = KeyIndexParams(w.table, "i" + std::to_string(i));
    if (!builder.Build(p, &id).ok()) std::abort();
  }
  Transaction* txn = w.engine->Begin();
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = w.engine->records()->InsertRecord(
        txn, w.table, Schema::EncodeRecord({Key8(i++), "payload"}));
    benchmark::DoNotOptimize(r.ok());
    if ((i & 1023) == 0) {
      (void)w.engine->Commit(txn);
      txn = w.engine->Begin();
    }
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordInsertWithIndexes)->Arg(0)->Arg(1)->Arg(3);

void BM_SideFileAppend(benchmark::State& state) {
  World w = MakeWorld(0);
  SideFile sf(99, w.engine->pool(), w.engine->txns());
  if (!sf.Create().ok()) std::abort();
  Transaction* txn = w.engine->Begin();
  uint64_t i = 0;
  for (auto _ : state) {
    auto s = sf.Append(txn, SideFileOp::kInsertKey, Key8(i++), Rid(1, 0));
    benchmark::DoNotOptimize(s.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SideFileAppend);

void BM_HashProbeHit(benchmark::State& state) {
  HashIndex hash(/*index_id=*/1, /*shards=*/0);
  hash.set_readable(true);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hash.OnLeafInsert(Key8(i), Rid(static_cast<PageId>(i + 1), 0), 0);
  }
  Random rng(3);
  for (auto _ : state) {
    Rid rid;
    auto p = hash.Probe(Key8(rng.Uniform(n)), &rid);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashProbeHit);

void BM_HashProbeMiss(benchmark::State& state) {
  HashIndex hash(/*index_id=*/1, /*shards=*/0);
  hash.set_readable(true);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hash.OnLeafInsert(Key8(i), Rid(static_cast<PageId>(i + 1), 0), 0);
  }
  Random rng(4);
  for (auto _ : state) {
    Rid rid;
    auto p = hash.Probe(Key8(n + rng.Uniform(n)), &rid);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashProbeMiss);

void BM_BtreeFindKeyValue(benchmark::State& state) {
  // The tree-descent side of the point-read comparison: same call the
  // read path falls back to when the hash misses.
  World w = MakeWorld(0);
  auto desc = w.engine->catalog()->CreateIndex("i", w.table, false, {0},
                                               BuildAlgo::kOffline);
  BTree* tree = w.engine->catalog()->index(desc->id);
  Transaction* txn = w.engine->Begin();
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    (void)tree->Insert(txn, Key8(i), Rid(i, 0));
  }
  (void)w.engine->Commit(txn);
  Random rng(5);
  for (auto _ : state) {
    auto r = tree->FindKeyValue(Key8(rng.Uniform(n)));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeFindKeyValue);

void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager lm;
  uint64_t i = 0;
  for (auto _ : state) {
    LockId id = (i++ % 4096) + 1;
    benchmark::DoNotOptimize(lm.Lock(1, id, LockMode::kX).ok());
    lm.Unlock(1, id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

// Point-lookup comparison emitted to BENCH_micro.json: hash probe vs
// B+-tree descent (hit and miss paths), plus the end-to-end
// ReadRecordByKey cost with the fast path on vs off.  Runs after the
// google-benchmark cases so the smoke job can validate the report.
void WritePointLookupReport() {
  const uint64_t n = BenchRows(100000);
  const uint64_t lookups = std::min<uint64_t>(200000, n * 10);
  BenchReport report("micro");
  std::printf("\npoint-lookup comparison (%llu rows, %llu lookups):\n",
              (unsigned long long)n, (unsigned long long)lookups);

  // Pre-normalized present/absent key sets, visited in random order.
  Random rng(11);
  std::vector<std::string> hit_keys(lookups), miss_keys(lookups);
  for (uint64_t i = 0; i < lookups; ++i) {
    keyenc::AppendStringColumn(&hit_keys[i],
                               Workload::MakeKey(rng.Uniform(n), 12));
    keyenc::AppendStringColumn(&miss_keys[i],
                               Workload::MakeKey(n + rng.Uniform(n), 12));
  }

  auto add_row = [&report](const char* label, double ms, uint64_t ops) {
    double ns_per_op = 1e6 * ms / static_cast<double>(ops);
    std::printf("  %-24s %10.1f ns/op\n", label, ns_per_op);
    report.AddRow(label, {{"ns_per_op", ns_per_op},
                          {"lookups", static_cast<double>(ops)}});
  };

  for (bool with_hash : {true, false}) {
    Options options = DefaultBenchOptions();
    options.enable_hash_index = with_hash;
    World w = MakeWorld(n, options);
    OfflineIndexBuilder builder(w.engine.get());
    IndexId idx = kInvalidIndexId;
    if (!builder.Build(KeyIndexParams(w.table, "i"), &idx).ok()) {
      std::abort();
    }
    if (with_hash) {
      // Raw structure cost: hash probe vs the descent it replaces.
      HashIndex* hash = w.engine->catalog()->hash_index(idx);
      BTree* tree = w.engine->catalog()->index(idx);
      Rid rid;
      double t0 = NowMs();
      for (const std::string& k : hit_keys) {
        benchmark::DoNotOptimize(hash->Probe(k, &rid));
      }
      add_row("hash_probe_hit", NowMs() - t0, lookups);
      t0 = NowMs();
      for (const std::string& k : miss_keys) {
        benchmark::DoNotOptimize(hash->Probe(k, &rid));
      }
      add_row("hash_probe_miss", NowMs() - t0, lookups);
      t0 = NowMs();
      for (const std::string& k : hit_keys) {
        benchmark::DoNotOptimize(tree->FindKeyValue(k).ok());
      }
      add_row("tree_descend_hit", NowMs() - t0, lookups);
      t0 = NowMs();
      for (const std::string& k : miss_keys) {
        benchmark::DoNotOptimize(tree->FindKeyValue(k).ok());
      }
      add_row("tree_descend_miss", NowMs() - t0, lookups);
    }
    // End-to-end point read (locking + heap fetch included).
    Transaction* txn = w.engine->Begin();
    double t0 = NowMs();
    for (uint64_t i = 0; i < lookups; ++i) {
      auto r = w.engine->records()->ReadRecordByKey(txn, w.table, idx,
                                                    hit_keys[i]);
      benchmark::DoNotOptimize(r.ok());
      if ((i & 4095) == 4095) {
        (void)w.engine->Commit(txn);
        txn = w.engine->Begin();
      }
    }
    add_row(with_hash ? "read_by_key_hash_on" : "read_by_key_hash_off",
            NowMs() - t0, lookups);
    (void)w.engine->Commit(txn);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  oib::bench::WritePointLookupReport();
  return 0;
}
