// Substrate micro-benchmarks (google-benchmark): B+-tree point ops, IB
// batch inserts, external sort, WAL appends, heap record ops, side-file
// appends, lock acquisition.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "sort/external_sorter.h"

namespace oib {
namespace bench {
namespace {

std::string Key8(uint64_t i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "%08llu", (unsigned long long)i);
  return buf;
}

void BM_BtreeInsert(benchmark::State& state) {
  World w = MakeWorld(0);
  auto desc = w.engine->catalog()->CreateIndex("i", w.table, false, {0},
                                               BuildAlgo::kOffline);
  BTree* tree = w.engine->catalog()->index(desc->id);
  Transaction* txn = w.engine->Begin();
  uint64_t i = 0;
  Random rng(1);
  for (auto _ : state) {
    auto r = tree->Insert(txn, Key8(rng.Next() % 10000000), Rid(i++ & 0xffff, 0));
    benchmark::DoNotOptimize(r.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeLookup(benchmark::State& state) {
  World w = MakeWorld(0);
  auto desc = w.engine->catalog()->CreateIndex("i", w.table, false, {0},
                                               BuildAlgo::kOffline);
  BTree* tree = w.engine->catalog()->index(desc->id);
  Transaction* txn = w.engine->Begin();
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    (void)tree->Insert(txn, Key8(i), Rid(i, 0));
  }
  (void)w.engine->Commit(txn);
  Random rng(2);
  for (auto _ : state) {
    int i = static_cast<int>(rng.Uniform(n));
    auto r = tree->Lookup(Key8(i), Rid(i, 0));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeLookup);

void BM_BtreeIbBatchInsert(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  World w = MakeWorld(0);
  auto desc = w.engine->catalog()->CreateIndex("i", w.table, false, {0},
                                               BuildAlgo::kOffline);
  BTree* tree = w.engine->catalog()->index(desc->id);
  Transaction* txn = w.engine->Begin();
  uint64_t next = 0;
  std::vector<std::string> keys(batch);
  for (auto _ : state) {
    std::vector<IndexKeyRef> refs;
    refs.reserve(batch);
    for (size_t j = 0; j < batch; ++j) {
      keys[j] = Key8(next);
      refs.push_back({keys[j], Rid(static_cast<PageId>(next), 0)});
      ++next;
    }
    BTree::IbStats stats;
    auto s = tree->IbInsertBatch(txn, refs, false, nullptr, &stats);
    benchmark::DoNotOptimize(s.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BtreeIbBatchInsert)->Arg(1)->Arg(64)->Arg(256);

void BM_ExternalSortAndMerge(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Options options = DefaultBenchOptions();
  options.sort_workspace_keys = 4096;
  for (auto _ : state) {
    RunStore store;
    ExternalSorter sorter(&store, &options);
    Random rng(7);
    for (size_t i = 0; i < n; ++i) {
      (void)sorter.Add(Key8(rng.Next() % 100000000), Rid(1, 0));
    }
    (void)sorter.FinishInput();
    (void)sorter.PrepareMerge();
    auto cursor = sorter.OpenMerge();
    SortItem item;
    size_t count = 0;
    for (;;) {
      auto more = (*cursor)->Next(&item);
      if (!more.ok() || !*more) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSortAndMerge)->Arg(10000)->Arg(100000);

void BM_WalAppend(benchmark::State& state) {
  LogManager log;
  std::string payload(64, 'x');
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.rm_id = RmId::kHeap;
    rec.txn_id = 1;
    rec.redo = payload;
    benchmark::DoNotOptimize(log.Append(&rec).ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_WalAppend);

void BM_HeapInsert(benchmark::State& state) {
  World w = MakeWorld(0);
  HeapFile* heap = w.engine->catalog()->table(w.table);
  Transaction* txn = w.engine->Begin();
  std::string rec(64, 'r');
  for (auto _ : state) {
    auto r = heap->Insert(txn, rec, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapInsert);

void BM_RecordInsertWithIndexes(benchmark::State& state) {
  int indexes = static_cast<int>(state.range(0));
  World w = MakeWorld(0);
  for (int i = 0; i < indexes; ++i) {
    OfflineIndexBuilder builder(w.engine.get());
    IndexId id;
    BuildParams p = KeyIndexParams(w.table, "i" + std::to_string(i));
    if (!builder.Build(p, &id).ok()) std::abort();
  }
  Transaction* txn = w.engine->Begin();
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = w.engine->records()->InsertRecord(
        txn, w.table, Schema::EncodeRecord({Key8(i++), "payload"}));
    benchmark::DoNotOptimize(r.ok());
    if ((i & 1023) == 0) {
      (void)w.engine->Commit(txn);
      txn = w.engine->Begin();
    }
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordInsertWithIndexes)->Arg(0)->Arg(1)->Arg(3);

void BM_SideFileAppend(benchmark::State& state) {
  World w = MakeWorld(0);
  SideFile sf(99, w.engine->pool(), w.engine->txns());
  if (!sf.Create().ok()) std::abort();
  Transaction* txn = w.engine->Begin();
  uint64_t i = 0;
  for (auto _ : state) {
    auto s = sf.Append(txn, SideFileOp::kInsertKey, Key8(i++), Rid(1, 0));
    benchmark::DoNotOptimize(s.ok());
  }
  (void)w.engine->Commit(txn);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SideFileAppend);

void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager lm;
  uint64_t i = 0;
  for (auto _ : state) {
    LockId id = (i++ % 4096) + 1;
    benchmark::DoNotOptimize(lm.Lock(1, id, LockMode::kX).ok());
    lm.Unlock(1, id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

}  // namespace
}  // namespace bench
}  // namespace oib

BENCHMARK_MAIN();
