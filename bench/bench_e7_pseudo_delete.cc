// E7 — Pseudo-deleted key accumulation and garbage collection
// (paper section 2.2.4).
//
// Claims: "keys deleted in such a fashion take up room in the index...
// pseudo-deleted keys can cause unnecessary page splits and cause more
// pages to be allocated for the index than are actually required"; a
// background GC pass with conditional instant locks reclaims them.  We
// build with NSF under increasingly delete-heavy workloads and measure
// index bloat before/after GC.

#include "btree/tree_verifier.h"
#include "core/pseudo_delete_gc.h"

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRows = BenchRows(30000);

void RunOne(double delete_pct, BenchReport* report) {
  World w = MakeWorld(kRows);
  WorkloadOptions wo;
  wo.threads = 2;
  wo.insert_pct = 0.1;
  wo.delete_pct = delete_pct;
  wo.update_pct = 0.2;
  wo.update_changes_key = 1.0;
  Workload workload(w.engine.get(), w.table, wo);
  workload.Seed(w.rids, kRows);
  workload.Start();
  while (workload.ops_done() < 20) std::this_thread::yield();

  BuildParams params = KeyIndexParams(w.table, "idx");
  IndexId index;
  NsfIndexBuilder builder(w.engine.get());
  Status s = builder.Build(params, &index);
  WorkloadStats wstats = workload.Stop();
  if (!s.ok()) std::abort();
  MustBeConsistent(w.engine.get(), w.table, index);

  BTree* tree = w.engine->catalog()->index(index);
  TreeVerifier tv(tree, w.engine->pool());
  auto before = tv.Clustering();
  if (!before.ok()) std::abort();

  PseudoDeleteGC gc(w.engine.get());
  GcStats gc_stats;
  double t0 = NowMs();
  if (!gc.Run(index, &gc_stats).ok()) std::abort();
  double gc_ms = NowMs() - t0;
  auto after = tv.Clustering();
  if (!after.ok()) std::abort();
  MustBeConsistent(w.engine.get(), w.table, index);

  std::printf("%8.2f %10llu %8llu %8llu %8.3f %8.3f %8llu %8llu %8.1f\n",
              delete_pct, (unsigned long long)wstats.deletes,
              (unsigned long long)before->pseudo_deleted,
              (unsigned long long)before->leaf_pages, before->utilization,
              after->utilization, (unsigned long long)gc_stats.removed,
              (unsigned long long)gc_stats.skipped_locked, gc_ms);
  report->AddRow(
      "nsf/delete_pct=" + std::to_string(delete_pct),
      {{"delete_pct", delete_pct},
       {"deletes", static_cast<double>(wstats.deletes)},
       {"pseudo_deleted", static_cast<double>(before->pseudo_deleted)},
       {"leaf_pages", static_cast<double>(before->leaf_pages)},
       {"utilization_before", before->utilization},
       {"utilization_after", after->utilization},
       {"gc_removed", static_cast<double>(gc_stats.removed)},
       {"gc_skipped_locked", static_cast<double>(gc_stats.skipped_locked)},
       {"gc_ms", gc_ms}});
}

void Run() {
  PrintHeader("E7: pseudo-delete bloat in NSF builds + GC",
              "delete-heavy concurrent workloads leave tombstones that "
              "inflate the index; the 2.2.4 GC pass removes committed ones");
  std::printf("%8s %10s %8s %8s %8s %8s %8s %8s %8s\n", "del_pct",
              "deletes", "pseudo", "leaves", "util_b", "util_a", "gc_rm",
              "gc_skip", "gc_ms");
  BenchReport report("e7");
  for (double pct : {0.1, 0.3, 0.6}) RunOne(pct, &report);
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
