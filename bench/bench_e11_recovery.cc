// E11 — Restart recovery: wall-clock vs log length, serial vs parallel
// redo (ROADMAP "parallel restart redo"; paper section 5 motivation —
// a build interrupted by a crash must come back quickly enough that
// "not all the so-far-accomplished work is lost").
//
// Builds a crashed durable state once per log size on real files (no
// checkpoint, so restart replays the whole history), then restarts
// fresh copies of that state with 1, 2, and 4 redo threads.  Claim
// checked: partitioned-by-page redo beats the serial forward pass on
// the same log, and recovers byte-identical row counts.

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRowsSmall = BenchRows(10000);
const uint64_t kRowsLarge = BenchRows(40000);

std::string BenchDir(const std::string& leaf) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / leaf;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir.string();
}

// Populates `rows` records plus `rows / 4` committed single-row update
// transactions on a file-backed engine, then crashes it without a
// checkpoint: the WAL carries the entire history and restart must redo
// all of it.  Returns the directory holding the crashed state.
std::string MakeCrashedState(uint64_t rows, const Options& options,
                             uint64_t* wal_bytes) {
  std::string dir = BenchDir("oib_bench_e11_seed");
  auto env = Env::OnFiles(dir, options);
  if (!env.ok()) std::abort();
  auto engine = Engine::Open(options, env->get());
  if (!engine.ok()) std::abort();
  auto table = (*engine)->catalog()->CreateTable("t");
  if (!table.ok()) std::abort();
  WorkloadOptions wo;
  wo.seed = 42;
  auto rids = Workload::Populate(engine->get(), *table, rows, wo);
  if (!rids.ok()) std::abort();
  // A tail of small committed transactions: distinct txns exercise the
  // analysis pass (txn table) as well as redo.
  for (uint64_t i = 0; i < rows / 4; ++i) {
    Transaction* txn = (*engine)->Begin();
    auto st = (*engine)
                  ->records()
                  ->InsertRecord(txn, *table,
                                 Schema::EncodeRecord(
                                     {"tail" + std::to_string(i), "p"}))
                  .status();
    if (!st.ok() || !(*engine)->Commit(txn).ok()) std::abort();
  }
  if (!(*engine)->log()->FlushAll().ok()) std::abort();
  if (!(*engine)->SimulateCrash().ok()) std::abort();
  engine->reset();
  env->reset();
  std::error_code ec;
  auto sz = std::filesystem::file_size(std::filesystem::path(dir) / "wal",
                                       ec);
  *wal_bytes = ec ? 0 : static_cast<uint64_t>(sz);
  return dir;
}

double RunOne(const std::string& seed_dir, uint64_t rows, const char* size,
              size_t threads, double serial_ms, BenchReport* report) {
  namespace fs = std::filesystem;
  Options options = DefaultBenchOptions();
  options.recovery_threads = threads;
  std::string dir = BenchDir("oib_bench_e11_run");
  std::error_code ec;
  fs::copy(seed_dir, dir, fs::copy_options::recursive, ec);
  if (ec) std::abort();

  auto env = Env::OnFiles(dir, options);
  if (!env.ok()) std::abort();
  RecoveryStats stats;
  double t0 = NowMs();
  auto engine = Engine::Restart(options, env->get(), &stats);
  double restart_ms = NowMs() - t0;
  if (!engine.ok()) {
    std::fprintf(stderr, "restart failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  // Recovered state must be complete regardless of parallelism.
  auto table = (*engine)->catalog()->TableByName("t");
  if (!table.ok()) std::abort();
  uint64_t n = 0;
  if (!(*engine)
           ->catalog()
           ->table(*table)
           ->ForEach([&](const Rid&, std::string_view) { ++n; })
           .ok()) {
    std::abort();
  }
  uint64_t expect = rows + rows / 4;
  if (n != expect) {
    std::fprintf(stderr, "row count after recovery: %llu, expected %llu\n",
                 (unsigned long long)n, (unsigned long long)expect);
    std::abort();
  }
  engine->reset();
  env->reset();
  fs::remove_all(dir, ec);

  double speedup = serial_ms > 0 ? serial_ms / restart_ms : 1.0;
  std::printf("%-6s %8llu %8zu %12.1f %12llu %10.1f %8.1f %8.1f %8.2fx\n",
              size, (unsigned long long)rows, stats.redo_threads,
              restart_ms, (unsigned long long)stats.records_redone,
              stats.analysis_ns / 1e6, stats.redo_ns / 1e6,
              stats.undo_ns / 1e6, speedup);
  report->AddRow(std::string(size) + "/threads=" + std::to_string(threads),
                 {{"rows", static_cast<double>(rows)},
                  {"redo_threads", static_cast<double>(stats.redo_threads)},
                  {"restart_ms", restart_ms},
                  {"records_redone", static_cast<double>(stats.records_redone)},
                  {"analysis_ms", stats.analysis_ns / 1e6},
                  {"redo_ms", stats.redo_ns / 1e6},
                  {"undo_ms", stats.undo_ns / 1e6},
                  {"speedup_vs_serial", speedup}});
  return restart_ms;
}

void Run() {
  PrintHeader(
      "E11: restart recovery time vs log length, serial vs parallel redo",
      "partitioned-by-page redo recovers the same state faster than the "
      "serial forward pass; recovery cost scales with the un-checkpointed "
      "log tail");
  std::printf("%-6s %8s %8s %12s %12s %10s %8s %8s %9s\n", "size", "rows",
              "threads", "restart_ms", "redone", "ana_ms", "redo_ms",
              "undo_ms", "speedup");
  BenchReport report("e11");
  namespace fs = std::filesystem;
  Options options = DefaultBenchOptions();
  for (auto [size, rows] :
       {std::pair<const char*, uint64_t>{"small", kRowsSmall},
        std::pair<const char*, uint64_t>{"large", kRowsLarge}}) {
    uint64_t wal_bytes = 0;
    std::string seed_dir = MakeCrashedState(rows, options, &wal_bytes);
    std::printf("--- %s: wal=%.1f MiB ---\n", size,
                wal_bytes / (1024.0 * 1024.0));
    // Serial baseline first; later rows report speedup against it.
    double serial_ms = RunOne(seed_dir, rows, size, 1, 0.0, &report);
    for (size_t threads : {2ul, 4ul}) {
      RunOne(seed_dir, rows, size, threads, serial_ms, &report);
    }
    std::error_code ec;
    fs::remove_all(seed_dir, ec);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
