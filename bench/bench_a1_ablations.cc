// A1 — ablations of the design knobs DESIGN.md calls out.
//
// (a) Leaf fill factor: "the proper amount of desired free space (for
//     future inserts during normal processing) is left in the leaf pages"
//     (section 2.2.3).  A 100% fill makes the freshly built index split
//     on nearly every subsequent insert; headroom trades space for
//     insert-time stability.
// (b) Sort workspace: replacement selection produces runs ~2× workspace;
//     fewer runs mean a cheaper (possibly single-pass) merge (section 5).

#include "btree/tree_verifier.h"

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

void RunFillFactor(double fill, BenchReport* report) {
  Options options = DefaultBenchOptions();
  options.leaf_fill_factor = fill;
  World w = MakeWorld(BenchRows(30000), options);
  BuildParams params = KeyIndexParams(w.table, "idx");
  IndexId index;
  SfIndexBuilder builder(w.engine.get());
  if (!builder.Build(params, &index).ok()) std::abort();
  BTree* tree = w.engine->catalog()->index(index);
  TreeVerifier tv(tree, w.engine->pool());
  auto before = tv.Clustering();
  if (!before.ok()) std::abort();
  uint64_t splits_before = tree->split_count();

  // Post-build insert churn at RANDOM positions inside the key range —
  // this is the "future inserts during normal processing" the reserved
  // free space is meant to absorb.
  Random rng(fill * 1000);
  Transaction* txn = w.engine->Begin();
  const int kChurn = 4000;
  for (int i = 0; i < kChurn; ++i) {
    std::string key = Workload::MakeKey(rng.Uniform(30000), 12);
    auto r = w.engine->records()->InsertRecord(
        txn, w.table, Schema::EncodeRecord({key, "churn"}));
    if (!r.ok()) std::abort();
    if (i % 512 == 511) {
      if (!w.engine->Commit(txn).ok()) std::abort();
      txn = w.engine->Begin();
    }
  }
  if (!w.engine->Commit(txn).ok()) std::abort();
  uint64_t splits_after = tree->split_count();
  MustBeConsistent(w.engine.get(), w.table, index);

  std::printf("%8.2f %10llu %8.3f %12d %12llu\n", fill,
              (unsigned long long)before->leaf_pages, before->utilization,
              kChurn,
              (unsigned long long)(splits_after - splits_before));
  report->AddRow(
      "fill=" + std::to_string(fill),
      {{"fill", fill},
       {"leaf_pages", static_cast<double>(before->leaf_pages)},
       {"utilization", before->utilization},
       {"post_inserts", static_cast<double>(kChurn)},
       {"post_splits", static_cast<double>(splits_after - splits_before)}});
}

void RunSortWorkspace(size_t workspace, BenchReport* report) {
  Options options = DefaultBenchOptions();
  options.sort_workspace_keys = workspace;
  // A table populated in key order would sort into a single run no
  // matter what (replacement selection loves presorted input); shuffle
  // the key-to-row assignment so the scan emits keys in random order.
  World w;
  w.options = options;
  w.env = Env::InMemory(options);
  w.engine = std::move(*Engine::Open(options, w.env.get()));
  w.table = *w.engine->catalog()->CreateTable("t");
  {
    const uint64_t rows = BenchRows(60000);
    std::vector<uint64_t> ids(rows);
    for (uint64_t i = 0; i < rows; ++i) ids[i] = i;
    Random rng(99);
    for (uint64_t i = rows - 1; i > 0; --i) {
      std::swap(ids[i], ids[rng.Uniform(i + 1)]);
    }
    Transaction* txn = w.engine->Begin();
    for (uint64_t i = 0; i < rows; ++i) {
      auto r = w.engine->records()->InsertRecord(
          txn, w.table,
          Schema::EncodeRecord({Workload::MakeKey(ids[i], 12), "p"}));
      if (!r.ok()) std::abort();
      if (i % 1024 == 1023) {
        if (!w.engine->Commit(txn).ok()) std::abort();
        txn = w.engine->Begin();
      }
    }
    if (!w.engine->Commit(txn).ok()) std::abort();
  }
  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index;
  double t0 = NowMs();
  SfIndexBuilder builder(w.engine.get());
  if (!builder.Build(params, &index, &stats).ok()) std::abort();
  double elapsed = NowMs() - t0;
  MustBeConsistent(w.engine.get(), w.table, index);
  std::printf("%10zu %8llu %10.1f %10.1f\n", workspace,
              (unsigned long long)stats.sort_runs, stats.scan_ms, elapsed);
  report->AddRow("workspace=" + std::to_string(workspace),
                 {{"workspace", static_cast<double>(workspace)},
                  {"sort_runs", static_cast<double>(stats.sort_runs)},
                  {"scan_ms", stats.scan_ms},
                  {"total_ms", elapsed}});
}

void Run() {
  BenchReport report("a1");
  PrintHeader("A1a: leaf fill factor vs post-build split storm",
              "free space left by IB absorbs future inserts (2.2.3)");
  std::printf("%8s %10s %8s %12s %12s\n", "fill", "leaves", "util",
              "post_inserts", "post_splits");
  for (double fill : {0.6, 0.75, 0.9, 1.0}) RunFillFactor(fill, &report);

  PrintHeader("A1b: sort workspace vs run count (section 5)",
              "replacement selection: runs ~ rows / (2 * workspace)");
  std::printf("%10s %8s %10s %10s\n", "workspace", "runs", "scan_ms",
              "total_ms");
  for (size_t ws : {1024ul, 4096ul, 16384ul, 65536ul}) {
    RunSortWorkspace(ws, &report);
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
