// E8 — Multiple indexes in one data scan (paper sections 2.3.1, 6.2).
//
// Claims: "I/O time to scan the data pages would be a significant portion
// of the total elapsed time"; "since the cost of accessing all the data
// pages may be a significant part of the overall cost of index build, it
// would be very beneficial to build multiple indexes in one data scan."
// We compare k SF builds issued sequentially (k scans) against
// BuildMany (one scan).

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRows = BenchRows(40000);

// The paper's setting is I/O-bound ("it may take several days to just
// scan all the pages"); reproduce that regime with a small buffer pool
// (the table does not fit) and a per-page read latency.
World MakeIoBoundWorld(size_t threads = 1) {
  Options options = DefaultBenchOptions();
  options.build_threads = threads;
  options.buffer_pool_pages = 128;  // table is ~540 pages
  World w = MakeWorld(kRows, options);
  static_cast<InMemoryDisk*>(w.env->disk.get())->set_read_delay_us(30);
  return w;
}

BuildParams NthParams(TableId table, int i) {
  BuildParams p;
  p.name = "idx" + std::to_string(i);
  p.table = table;
  // Alternate between key and payload columns so the indexes differ.
  p.key_cols = {static_cast<uint32_t>(i % 2)};
  return p;
}

void RunSequential(int k, BenchReport* report) {
  World w = MakeIoBoundWorld();
  uint64_t reads0 = w.env->disk->reads();
  double t0 = NowMs();
  uint64_t pages = 0;
  for (int i = 0; i < k; ++i) {
    SfIndexBuilder builder(w.engine.get());
    BuildStats stats;
    IndexId index;
    Status s = builder.Build(NthParams(w.table, i), &index, &stats);
    if (!s.ok()) std::abort();
    pages += stats.data_pages_scanned;
  }
  double elapsed = NowMs() - t0;
  uint64_t disk_reads = w.env->disk->reads() - reads0;
  for (const auto& d : w.engine->catalog()->IndexesOf(w.table)) {
    MustBeConsistent(w.engine.get(), w.table, d.id);
  }
  std::printf("%4d %-10s %3d %10.1f %12llu %12llu\n", k, "k-scans", 1,
              elapsed, (unsigned long long)pages,
              (unsigned long long)disk_reads);
  report->AddRow("k-scans/k=" + std::to_string(k),
                 {{"k", static_cast<double>(k)},
                  {"threads", 1.0},
                  {"total_ms", elapsed},
                  {"pages_scanned", static_cast<double>(pages)},
                  {"disk_reads", static_cast<double>(disk_reads)}});
}

void RunOneScan(int k, size_t threads, BenchReport* report) {
  World w = MakeIoBoundWorld(threads);
  std::vector<BuildParams> params;
  for (int i = 0; i < k; ++i) params.push_back(NthParams(w.table, i));
  SfIndexBuilder builder(w.engine.get());
  std::vector<IndexId> ids;
  BuildStats stats;
  uint64_t reads0 = w.env->disk->reads();
  double t0 = NowMs();
  Status s = builder.BuildMany(params, &ids, &stats);
  double elapsed = NowMs() - t0;
  uint64_t disk_reads = w.env->disk->reads() - reads0;
  if (!s.ok()) std::abort();
  for (IndexId id : ids) MustBeConsistent(w.engine.get(), w.table, id);
  std::printf("%4d %-10s %3zu %10.1f %12llu %12llu\n", k, "one-scan",
              threads, elapsed,
              (unsigned long long)stats.data_pages_scanned,
              (unsigned long long)disk_reads);
  report->AddRow(
      "one-scan/k=" + std::to_string(k) + "/t" + std::to_string(threads),
      {{"k", static_cast<double>(k)},
       {"threads", static_cast<double>(threads)},
       {"total_ms", elapsed},
       {"pages_scanned", static_cast<double>(stats.data_pages_scanned)},
       {"disk_reads", static_cast<double>(disk_reads)}});
}

void Run() {
  PrintHeader("E8: k indexes, one scan vs k scans (section 6.2)",
              "a single shared scan amortizes the dominant data-page I/O "
              "across all indexes being built");
  std::printf("%4s %-10s %3s %10s %12s %12s\n", "k", "strategy", "thr",
              "total_ms", "pages_scanned", "disk_reads");
  BenchReport report("e8");
  for (int k : {1, 2, 4}) {
    RunSequential(k, &report);
    // The one-scan side sweeps build_threads: partitioned scanning
    // spreads the latency-bound page reads across workers, so the
    // shared scan amortizes across indexes *and* across threads.
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      RunOneScan(k, threads, &report);
    }
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
