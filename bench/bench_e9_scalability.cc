// E9 — Update scalability during an SF build (ROADMAP north-star; paper
// sections 1, 3: "updates are not quiesced").
//
// E2 shows one updater is never blocked while SF builds.  E9 strengthens
// the claim to *parallel* updaters: with the sharded buffer pool and the
// reservation-based WAL there is no process-wide serial point left on the
// update hot path, so sustained update throughput during the build should
// improve monotonically as workload threads grow on a multi-core host
// (on a 1-core runner the sweep degenerates to a scheduling test and the
// interesting number is the single-thread ops/sec vs E2's baseline).
//
// Usage: bench_e9_scalability [--threads=1,2,4,8] [--rows=N]

#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "common/failpoint.h"

namespace oib {
namespace bench {
namespace {

std::vector<uint64_t> ParseList(const char* s) {
  std::vector<uint64_t> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) break;
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

struct Result {
  double build_ms = 0;
  double ops_per_sec = 0;   // workload throughput while the build ran
  double upd_p50_us = 0;
  double upd_p95_us = 0;
  double upd_p99_us = 0;
  double upd_max_us = 0;
  double read_p50_us = 0;
  double read_p99_us = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t wal_flushes = 0;
  uint64_t bp_evictions = 0;
};

// --read-pct: point-read share of the mix.  < 0 keeps the legacy default
// mix (RID-based reads, no serving index); >= 0 routes reads by key
// through a pre-built serving index — the hash fast path when --hash=1.
double g_read_pct = -1.0;
bool g_use_hash = false;

Result RunOne(size_t workload_threads, uint64_t rows, bool lock_profile,
              const std::string& failpoints = std::string()) {
  Options options = DefaultBenchOptions();
  options.obs_lock_profile = lock_profile;
  options.enable_hash_index = g_use_hash;
  // The registry is process-global: clear policies a previous arm left
  // behind, then let Engine::Open apply this run's spec (if any).
  FailPointRegistry::Instance().Reset();
  options.failpoints = failpoints;
  World w = MakeWorld(rows, options);
  // The Open above enabled the (sticky, process-wide) profiler when
  // lock_profile is set; scope it to the build window instead so the
  // per-rank numbers attribute the *build*, not populate/warm-up — and so
  // a baseline run after a profiled one actually measures profiler-off.
  sync::prof::SetEnabled(false);
  WorkloadOptions wo;
  wo.threads = static_cast<uint32_t>(workload_threads);
  if (g_read_pct >= 0.0) {
    OfflineIndexBuilder serving_builder(w.engine.get());
    IndexId serving = kInvalidIndexId;
    Status bs = serving_builder.Build(KeyIndexParams(w.table, "serving"),
                                      &serving);
    if (!bs.ok()) {
      std::fprintf(stderr, "serving build failed: %s\n",
                   bs.ToString().c_str());
      std::abort();
    }
    double rest = 1.0 - g_read_pct;
    wo.insert_pct = rest * 0.375;
    wo.delete_pct = rest * 0.25;
    wo.update_pct = rest * 0.375;
    wo.read_index = serving;
    // Skewed keys so read scaling is measured with hot-key contention
    // (E2's read-heavy scenario covers the uniform, I/O-bound regime).
    wo.read_dist = ReadKeyDist::kZipfian;
  }

  Workload workload(w.engine.get(), w.table, wo);
  workload.Seed(w.rids, rows);
  workload.Start();
  while (workload.ops_done() < 20 * workload_threads) {
    std::this_thread::yield();
  }

  // Scope every histogram/counter to the build window.
  obs::MetricsRegistry::Default().ResetAll();
  sync::prof::SetEnabled(lock_profile);

  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index = kInvalidIndexId;
  uint64_t ops_before = workload.ops_done();
  double t0 = NowMs();
  SfIndexBuilder builder(w.engine.get());
  Status s = builder.Build(params, &index, &stats);
  double build_ms = NowMs() - t0;
  uint64_t ops_during = workload.ops_done() - ops_before;
  obs::HistogramSnapshot upd =
      obs::MetricsRegistry::Default()
          .GetHistogram("workload.update_ns")
          ->Snapshot();
  obs::HistogramSnapshot rd =
      obs::MetricsRegistry::Default()
          .GetHistogram("workload.read_ns")
          ->Snapshot();
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().TakeSnapshot();
  sync::prof::SetEnabled(false);
  WorkloadStats wstats = workload.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "sf build failed (threads=%zu): %s\n",
                 workload_threads, s.ToString().c_str());
    std::abort();
  }
  MustBeConsistent(w.engine.get(), w.table, index);

  Result r;
  r.build_ms = build_ms;
  r.ops_per_sec = 1000.0 * static_cast<double>(ops_during) / build_ms;
  r.upd_p50_us = static_cast<double>(upd.Percentile(50)) / 1000.0;
  r.upd_p95_us = static_cast<double>(upd.Percentile(95)) / 1000.0;
  r.upd_p99_us = static_cast<double>(upd.Percentile(99)) / 1000.0;
  r.upd_max_us = static_cast<double>(upd.max) / 1000.0;
  r.read_p50_us = static_cast<double>(rd.Percentile(50)) / 1000.0;
  r.read_p99_us = static_cast<double>(rd.Percentile(99)) / 1000.0;
  r.commits = wstats.commits;
  r.aborts = wstats.aborts;
  auto counter = [&snap](const char* name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  r.wal_flushes = counter("wal.flushes");
  r.bp_evictions = counter("bufferpool.evictions");
  return r;
}

void Run(const std::vector<uint64_t>& threads_sweep, uint64_t rows,
         int reps) {
  PrintHeader("E9: update scalability during an SF build",
              "updates are not quiesced — and with no global lock on the "
              "update hot path, parallel updaters scale while SF builds");
  BenchReport report("e9");
  std::printf("%-8s %10s %14s %14s %8s %9s %9s %9s %9s %10s %10s\n",
              "threads", "build_ms", "ops/sec(build)", "ops/sec(nolp)",
              "lp_ov%", "commits", "aborts", "upd_p50us", "upd_p99us",
              "upd_maxus", "walflush");
  for (uint64_t threads : threads_sweep) {
    // Overhead A/B: discard one warmup run (cold page cache / file
    // creation dominate the first run), then alternate baseline/profiled
    // `reps` times and compare best-of throughput per arm — a single
    // pair is swamped by scheduler noise on a shared runner, while the
    // per-arm maximum estimates the uncontaminated rate.  The reported
    // row is the last profiled run, with the baseline throughput and the
    // relative overhead alongside (acceptance target: <= 3% at full
    // size).
    RunOne(static_cast<size_t>(threads), rows, false);  // warmup
    Result base, r;
    for (int rep = 0; rep < reps; ++rep) {
      Result b = RunOne(static_cast<size_t>(threads), rows, false);
      Result p = RunOne(static_cast<size_t>(threads), rows, true);
      if (b.ops_per_sec > base.ops_per_sec) base = b;
      if (p.ops_per_sec >= r.ops_per_sec) r = p;
    }
    double overhead_pct =
        base.ops_per_sec > 0
            ? 100.0 * (base.ops_per_sec - r.ops_per_sec) / base.ops_per_sec
            : 0.0;
    // Failpoint overhead A/B: the baseline arms nothing (the hot-path
    // check is one relaxed atomic load), the other arm arms every site
    // on this workload's path with an inert policy (p=0 — evaluated,
    // never fires), which upper-bounds the disarmed cost.  Acceptance:
    // disarmed failpoints cost <= 1% on this bench.
    static const char kInertSpec[] =
        "wal.flush=delay:p=0:arg=0;wal.fsync=delay:p=0:arg=0;"
        "bufferpool.writeback=delay:p=0:arg=0;sf.scan=delay:p=0:arg=0;"
        "sf.load=delay:p=0:arg=0;sf.apply=delay:p=0:arg=0";
    Result inert;
    for (int rep = 0; rep < reps; ++rep) {
      Result f = RunOne(static_cast<size_t>(threads), rows, false,
                        kInertSpec);
      if (f.ops_per_sec > inert.ops_per_sec) inert = f;
    }
    double fp_overhead_pct =
        base.ops_per_sec > 0
            ? 100.0 * (base.ops_per_sec - inert.ops_per_sec) /
                  base.ops_per_sec
            : 0.0;
    std::printf("%-8llu %10.1f %14.1f %14.1f %8.2f %9llu %9llu %9.1f %9.1f "
                "%10.1f %10llu\n",
                (unsigned long long)threads, r.build_ms, r.ops_per_sec,
                base.ops_per_sec, overhead_pct,
                (unsigned long long)r.commits, (unsigned long long)r.aborts,
                r.upd_p50_us, r.upd_p99_us, r.upd_max_us,
                (unsigned long long)r.wal_flushes);
    std::printf("         failpoints: off=%.1f ops/s, inert=%.1f ops/s, "
                "overhead=%.2f%%\n",
                base.ops_per_sec, inert.ops_per_sec, fp_overhead_pct);
    report.AddRow("threads_" + std::to_string(threads),
                  {{"threads", static_cast<double>(threads)},
                   {"build_ms", r.build_ms},
                   {"ops_per_sec_during_build", r.ops_per_sec},
                   {"ops_per_sec_noprofile", base.ops_per_sec},
                   {"lock_profile_overhead_pct", overhead_pct},
                   {"ops_per_sec_failpoints_inert", inert.ops_per_sec},
                   {"failpoint_overhead_pct", fp_overhead_pct},
                   {"commits", static_cast<double>(r.commits)},
                   {"aborts", static_cast<double>(r.aborts)},
                   {"update_p50_us", r.upd_p50_us},
                   {"update_p95_us", r.upd_p95_us},
                   {"update_p99_us", r.upd_p99_us},
                   {"update_max_us", r.upd_max_us},
                   {"read_p50_us", r.read_p50_us},
                   {"read_p99_us", r.read_p99_us},
                   {"wal_flushes", static_cast<double>(r.wal_flushes)},
                   {"bp_evictions", static_cast<double>(r.bp_evictions)}});
  }
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  std::vector<uint64_t> threads = {1, 2, 4, 8};
  uint64_t rows = 20000;
  int reps = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = oib::bench::ParseList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      std::vector<uint64_t> r = oib::bench::ParseList(argv[i] + 7);
      if (!r.empty()) rows = r[0];
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      std::vector<uint64_t> r = oib::bench::ParseList(argv[i] + 7);
      if (!r.empty()) reps = static_cast<int>(r[0]);
    } else if (std::strncmp(argv[i], "--read-pct=", 11) == 0) {
      double v = std::atof(argv[i] + 11);
      if (v >= 1.0) {
        std::fprintf(stderr, "--read-pct must be < 1\n");
        return 2;
      }
      oib::bench::g_read_pct = v;
    } else if (std::strncmp(argv[i], "--hash=", 7) == 0) {
      oib::bench::g_use_hash = argv[i][7] == '1';
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads=1,2,4,8] [--rows=N] [--reps=N] "
                   "[--read-pct=0.9] [--hash=0|1]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads.empty() || rows == 0 || reps < 1) return 2;
  oib::bench::Run(threads, rows, reps);
  return 0;
}
