// E4 — Logging overhead of the builder (paper sections 2.3.1, 4).
//
// Claims: (a) "No log records are written by IB [in SF] for inserting
// keys until side-file processing begins", so SF's build-attributable log
// volume is near zero without updates; (b) NSF amortizes its logging with
// the multi-key interface — "one log record for multiple keys would save
// the pathlength of a log call for each key"; sweeping keys-per-call
// quantifies that saving.

#include "bench/bench_util.h"

namespace oib {
namespace bench {
namespace {

const uint64_t kRows = BenchRows(30000);

void RunAlgo(const char* algo, BenchReport* report) {
  World w = MakeWorld(kRows);
  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index;
  Status s;
  if (std::string(algo) == "offline") {
    OfflineIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else if (std::string(algo) == "nsf") {
    NsfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  } else {
    SfIndexBuilder builder(w.engine.get());
    s = builder.Build(params, &index, &stats);
  }
  if (!s.ok()) std::abort();
  MustBeConsistent(w.engine.get(), w.table, index);
  std::printf("%-12s %10llu %12llu %14.2f\n", algo,
              (unsigned long long)stats.log_records,
              (unsigned long long)stats.log_bytes,
              static_cast<double>(stats.log_bytes) / kRows);
  report->AddRow(algo,
                 {{"log_records", static_cast<double>(stats.log_records)},
                  {"log_bytes", static_cast<double>(stats.log_bytes)},
                  {"bytes_per_key",
                   static_cast<double>(stats.log_bytes) / kRows}});
}

void RunNsfBatchSweep(size_t keys_per_call, BenchReport* report) {
  Options options = DefaultBenchOptions();
  options.ib_keys_per_call = keys_per_call;
  World w = MakeWorld(kRows, options);
  BuildParams params = KeyIndexParams(w.table, "idx");
  BuildStats stats;
  IndexId index;
  double t0 = NowMs();
  NsfIndexBuilder builder(w.engine.get());
  Status s = builder.Build(params, &index, &stats);
  double elapsed = NowMs() - t0;
  if (!s.ok()) std::abort();
  std::printf("%-12zu %10llu %12llu %10.1f %10llu\n", keys_per_call,
              (unsigned long long)stats.ib.log_records,
              (unsigned long long)stats.log_bytes, elapsed,
              (unsigned long long)stats.ib.descents);
  report->AddRow(
      "nsf/keys_per_call=" + std::to_string(keys_per_call),
      {{"keys_per_call", static_cast<double>(keys_per_call)},
       {"ib_log_records", static_cast<double>(stats.ib.log_records)},
       {"log_bytes", static_cast<double>(stats.log_bytes)},
       {"total_ms", elapsed},
       {"descents", static_cast<double>(stats.ib.descents)}});
}

void Run() {
  PrintHeader("E4a: build-attributable log volume by algorithm",
              "SF writes (almost) nothing for the build itself; NSF logs "
              "every key, amortized per leaf; offline logs nothing");
  BenchReport report("e4");
  std::printf("%-12s %10s %12s %14s\n", "algo", "log_recs", "log_bytes",
              "bytes_per_key");
  for (const char* algo : {"offline", "sf", "nsf"}) RunAlgo(algo, &report);

  PrintHeader("E4b: NSF multi-key interface ablation",
              "larger keys-per-call -> fewer index log records and fewer "
              "tree descents (section 2.3.1)");
  std::printf("%-12s %10s %12s %10s %10s\n", "keys/call", "ib_log_recs",
              "log_bytes", "total_ms", "descents");
  for (size_t k : {1u, 8u, 64u, 256u}) RunNsfBatchSweep(k, &report);
  report.Write();
}

}  // namespace
}  // namespace bench
}  // namespace oib

int main(int argc, char** argv) {
  oib::bench::InitBenchObs(&argc, argv);
  oib::bench::Run();
  return 0;
}
